//! Ablation sweeps over the design choices DESIGN.md §5 calls out.
//!
//! Each sweep perturbs one parameter of the Table I systems and reruns a
//! representative benchmark, showing which modelling choices the paper's
//! conclusions actually depend on. Every sweep has a `_with` form taking an
//! explicit [`Executor`], so a caching engine can reuse the shared baseline
//! runs across sweeps.

use heteropipe_mem::cache::CacheConfig;
use heteropipe_workloads::{registry, Pipeline, Scale};

use crate::classify::AccessClass;
use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::organize::Organization;
use crate::render::TextTable;

/// A generic sweep result: one `(x, value)` series with labels.
#[derive(Debug, Clone)]
pub struct Sweep {
    /// What was swept.
    pub parameter: String,
    /// What was measured.
    pub metric: String,
    /// `(parameter value, measurement)` points.
    pub points: Vec<(String, f64)>,
}

impl Sweep {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let mut t = TextTable::new(&[self.parameter.as_str(), self.metric.as_str()]);
        for (x, y) in &self.points {
            t.row_owned(vec![x.clone(), format!("{y:.4}")]);
        }
        t.render()
    }
}

fn kmeans_pipeline(scale: Scale) -> Pipeline {
    registry::find("rodinia/kmeans")
        .expect("kmeans exists")
        .pipeline(scale)
        .expect("builds")
}

fn exec_run(
    exec: &dyn Executor,
    pipeline: &Pipeline,
    config: &SystemConfig,
    organization: Organization,
    misalignment_sensitive: bool,
) -> crate::report::RunReport {
    exec.execute(&JobSpec {
        pipeline,
        config,
        organization,
        misalignment_sensitive,
    })
}

/// Chunk-width sweep: how many concurrent chunks until the heterogeneous
/// processor's chunked producer-consumer organization stops improving
/// (paper §V-A: ≥4 streams suffice).
pub fn chunk_sweep(scale: Scale) -> Sweep {
    chunk_sweep_with(&DirectExecutor::new(), scale)
}

/// [`chunk_sweep`] through an explicit [`Executor`].
pub fn chunk_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let p = kmeans_pipeline(scale);
    let hetero = SystemConfig::heterogeneous();
    let base = exec_run(exec, &p, &hetero, Organization::Serial, false).roi;
    let mut points = vec![("serial".to_string(), 1.0)];
    for chunks in [2u32, 4, 8, 16, 32] {
        let r = exec_run(
            exec,
            &p,
            &hetero,
            Organization::ChunkedParallel { chunks },
            false,
        );
        points.push((chunks.to_string(), r.roi.fraction_of(base)));
    }
    Sweep {
        parameter: "chunks".into(),
        metric: "kmeans run time (rel. to hetero serial)".into(),
        points,
    }
}

/// CPU MLP sweep: how latency-sensitive the CPU stages are (the paper cites
/// [14]: CPUs are far more latency-sensitive than GPUs).
pub fn mlp_sweep(scale: Scale) -> Sweep {
    mlp_sweep_with(&DirectExecutor::new(), scale)
}

/// [`mlp_sweep`] through an explicit [`Executor`].
pub fn mlp_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let p = kmeans_pipeline(scale);
    let mut points = Vec::new();
    for mlp in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let mut cfg = SystemConfig::heterogeneous();
        cfg.cpu = cfg.cpu.with_mlp(mlp);
        let r = exec_run(exec, &p, &cfg, Organization::Serial, false);
        points.push((format!("{mlp}"), r.busy.cpu.as_millis_f64()));
    }
    Sweep {
        parameter: "CPU MLP".into(),
        metric: "kmeans CPU busy time (ms)".into(),
        points,
    }
}

/// GPU L2 capacity sweep: contention share of off-chip traffic vs cache
/// size, on a contention-heavy graph benchmark.
pub fn l2_sweep(scale: Scale) -> Sweep {
    l2_sweep_with(&DirectExecutor::new(), scale)
}

/// [`l2_sweep`] through an explicit [`Executor`].
pub fn l2_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let w = registry::find("pannotia/pr").expect("pr exists");
    let p = w.pipeline(scale).expect("builds");
    let mut points = Vec::new();
    for mb in [256u64, 512, 1024, 2048, 4096] {
        let mut cfg = SystemConfig::heterogeneous();
        cfg.hierarchy.gpu_l2 = CacheConfig::new(mb * 1024, 16);
        let r = exec_run(exec, &p, &cfg, Organization::Serial, false);
        let total = r.classes.total().max(1) as f64;
        let contention = (r.classes.get(AccessClass::RrContention)
            + r.classes.get(AccessClass::WrContention)) as f64
            / total;
        points.push((format!("{}KiB", mb), contention));
    }
    Sweep {
        parameter: "GPU L2 capacity".into(),
        metric: "pannotia/pr contention share of off-chip accesses".into(),
        points,
    }
}

/// Page-fault handler latency sweep on srad (the paper's 7x fault-slowdown
/// benchmark).
pub fn fault_sweep(scale: Scale) -> Sweep {
    fault_sweep_with(&DirectExecutor::new(), scale)
}

/// [`fault_sweep`] through an explicit [`Executor`].
pub fn fault_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let w = registry::find("rodinia/srad").expect("srad exists");
    let p = w.pipeline(scale).expect("builds");
    let mut base = None;
    let mut points = Vec::new();
    for us in [0u64, 1, 2, 4, 8, 16] {
        let mut cfg = SystemConfig::heterogeneous();
        cfg.gpu.page_fault_latency = heteropipe_sim::Ps::from_micros(us);
        let r = exec_run(exec, &p, &cfg, Organization::Serial, false);
        let b = *base.get_or_insert(r.roi);
        points.push((format!("{us}us"), r.roi.fraction_of(b)));
    }
    Sweep {
        parameter: "GPU page-fault latency".into(),
        metric: "srad run time (rel. to zero-cost faults)".into(),
        points,
    }
}

/// PCIe generation sweep: does more copy bandwidth close the discrete vs
/// heterogeneous gap for the copy-bound case study?
pub fn pcie_sweep(scale: Scale) -> Sweep {
    pcie_sweep_with(&DirectExecutor::new(), scale)
}

/// [`pcie_sweep`] through an explicit [`Executor`].
pub fn pcie_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let p = kmeans_pipeline(scale);
    let hetero_roi = exec_run(
        exec,
        &p,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        false,
    )
    .roi;
    let mut points = Vec::new();
    for gbps in [8.0f64, 16.0, 32.0, 64.0] {
        let mut cfg = SystemConfig::discrete();
        cfg.pcie = Some(cfg.pcie.expect("discrete").with_peak_bw(gbps * 1e9));
        let r = exec_run(exec, &p, &cfg, Organization::Serial, false);
        points.push((
            format!("{gbps:.0}GB/s"),
            r.roi.as_secs_f64() / hetero_roi.as_secs_f64(),
        ));
    }
    Sweep {
        parameter: "PCIe peak bandwidth".into(),
        metric: "kmeans discrete/hetero run-time ratio".into(),
        points,
    }
}

/// Forward-looking GPU scaling: how the heterogeneous processor's win over
/// the discrete system grows as the integrated GPU scales up (more SMs,
/// proportionally more memory bandwidth) — the processors the paper's
/// conclusions anticipate.
pub fn gpu_scaling_sweep(scale: Scale) -> Sweep {
    gpu_scaling_sweep_with(&DirectExecutor::new(), scale)
}

/// [`gpu_scaling_sweep`] through an explicit [`Executor`].
pub fn gpu_scaling_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let p = kmeans_pipeline(scale);
    let discrete_roi = exec_run(
        exec,
        &p,
        &SystemConfig::discrete(),
        Organization::Serial,
        false,
    )
    .roi;
    let mut points = Vec::new();
    for mult in [1u32, 2, 4] {
        let mut cfg = SystemConfig::heterogeneous();
        cfg.gpu.sms = (cfg.gpu.sms as u32 * mult).min(64) as u8;
        cfg.gpu_mem = cfg.gpu_mem.with_peak_bw(179.0e9 * mult as f64);
        let r = exec_run(
            exec,
            &p,
            &cfg,
            Organization::ChunkedParallel { chunks: 8 },
            false,
        );
        points.push((
            format!("{}x SMs+BW", mult),
            discrete_roi.as_secs_f64() / r.roi.as_secs_f64(),
        ));
    }
    Sweep {
        parameter: "integrated GPU scale".into(),
        metric: "kmeans discrete/hetero-chunked speedup".into(),
        points,
    }
}

/// Classifier spill-window sensitivity: how the Fig. 9 spill vs
/// long-range split moves as "next stage" widens to "within N stages".
/// The contention classes are unaffected by construction (same-stage reuse
/// is window-independent), which this sweep demonstrates.
pub fn spill_window_sweep(scale: Scale) -> Sweep {
    spill_window_sweep_with(&DirectExecutor::new(), scale)
}

/// [`spill_window_sweep`] through an explicit [`Executor`].
pub fn spill_window_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let w = registry::find("rodinia/srad").expect("srad exists");
    let p = w.pipeline(scale).expect("builds");
    let mut points = Vec::new();
    for window in [1u32, 2, 3, 4] {
        let mut cfg = SystemConfig::heterogeneous();
        cfg.spill_window = window;
        let r = exec_run(exec, &p, &cfg, Organization::Serial, false);
        let total = r.classes.total().max(1) as f64;
        let spills = (r.classes.get(AccessClass::WrSpill) + r.classes.get(AccessClass::RrSpill))
            as f64
            / total;
        points.push((window.to_string(), spills));
    }
    Sweep {
        parameter: "spill window (stages)".into(),
        metric: "srad spill share of off-chip accesses".into(),
        points,
    }
}

/// Alignment ablation: total GPU accesses of the misalignment-sensitive
/// benchmarks with and without an aligning shared allocator.
pub fn alignment_sweep(scale: Scale) -> Sweep {
    alignment_sweep_with(&DirectExecutor::new(), scale)
}

/// [`alignment_sweep`] through an explicit [`Executor`].
pub fn alignment_sweep_with(exec: &dyn Executor, scale: Scale) -> Sweep {
    let mut points = Vec::new();
    for w in registry::examined() {
        if !w.meta.misalignment_sensitive {
            continue;
        }
        let p = w.pipeline(scale).expect("builds");
        let misaligned = exec_run(
            exec,
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            true,
        );
        let mut aligned_cfg = SystemConfig::heterogeneous();
        aligned_cfg.aligned_allocator = true;
        let aligned = exec_run(exec, &p, &aligned_cfg, Organization::Serial, true);
        let gpu = heteropipe_mem::access::Component::Gpu.index();
        points.push((
            w.meta.full_name(),
            misaligned.accesses[gpu] as f64 / aligned.accesses[gpu].max(1) as f64,
        ));
    }
    Sweep {
        parameter: "benchmark (misalignment-sensitive)".into(),
        metric: "GPU accesses misaligned/aligned".into(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::run;

    #[test]
    fn mlp_sweep_is_monotone_decreasing() {
        let s = mlp_sweep(Scale::TEST);
        assert_eq!(s.points.len(), 5);
        for w in s.points.windows(2) {
            assert!(w[1].1 <= w[0].1 * 1.01, "{:?}", s.points);
        }
    }

    #[test]
    fn l2_sweep_contention_falls_with_capacity() {
        let s = l2_sweep(Scale::new(0.4));
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last < first,
            "contention should fall with bigger L2: {:?}",
            s.points
        );
    }

    #[test]
    fn fault_sweep_monotone_increasing() {
        let s = fault_sweep(Scale::TEST);
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(last > first, "{:?}", s.points);
    }

    #[test]
    fn pcie_sweep_narrows_the_gap() {
        let s = pcie_sweep(Scale::new(0.4));
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(
            last < first,
            "more PCIe bandwidth should close the gap: {:?}",
            s.points
        );
        // But never makes discrete faster than hetero for kmeans.
        assert!(last > 0.9, "{:?}", s.points);
    }

    #[test]
    fn spill_window_is_monotone_and_preserves_contention() {
        let s = spill_window_sweep(Scale::TEST);
        for w in s.points.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12, "{:?}", s.points);
        }
        // Contention is window-independent: check directly.
        let p = registry::find("pannotia/pr")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let narrow = run(
            &p,
            &SystemConfig::heterogeneous(),
            Organization::Serial,
            false,
        );
        let mut cfg = SystemConfig::heterogeneous();
        cfg.spill_window = 4;
        let wide = run(&p, &cfg, Organization::Serial, false);
        assert_eq!(
            narrow.classes.get(AccessClass::RrContention),
            wide.classes.get(AccessClass::RrContention)
        );
    }

    #[test]
    fn gpu_scaling_widens_the_gap() {
        let s = gpu_scaling_sweep(Scale::new(0.4));
        let first = s.points.first().unwrap().1;
        let last = s.points.last().unwrap().1;
        assert!(last >= first, "{:?}", s.points);
        assert!(first > 1.0, "hetero must already win at 1x: {:?}", s.points);
    }

    #[test]
    fn alignment_sweep_shows_inflation() {
        let s = alignment_sweep(Scale::TEST);
        assert!(!s.points.is_empty());
        for (name, ratio) in &s.points {
            assert!(*ratio >= 1.0, "{name}: {ratio}");
        }
        assert!(s.points.iter().any(|(_, r)| *r > 1.001), "{:?}", s.points);
    }

    #[test]
    fn sweep_renders() {
        let s = mlp_sweep(Scale::TEST);
        let out = s.render();
        assert!(out.contains("CPU MLP"));
    }
}
