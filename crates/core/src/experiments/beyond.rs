//! Beyond the paper's 46: the 12 benchmarks that did not run (or did
//! trivial work) in gem5-gpu, characterized under the same copy vs
//! limited-copy comparison. The workload models have no full-system porting
//! constraints, so the whole 58-benchmark census is measurable here — a
//! coverage extension the paper explicitly could not provide.

use heteropipe_workloads::{registry, Scale};

use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::organize::Organization;
use crate::render::{pct, TextTable};

/// One extra benchmark's characterization.
#[derive(Debug, Clone)]
pub struct BeyondRow {
    /// `suite/bench`.
    pub name: String,
    /// Copy-version copy share of run time.
    pub copy_share: f64,
    /// Limited-copy run time over copy run time.
    pub limited_rel: f64,
    /// Limited-copy page faults.
    pub faults: u64,
}

/// Characterizes the 12 unexamined benchmarks.
pub fn beyond46(scale: Scale) -> Vec<BeyondRow> {
    beyond46_with(&DirectExecutor::new(), scale)
}

/// [`beyond46`] through an explicit [`Executor`]: the 24 runs go through
/// `exec` as one batch.
pub fn beyond46_with(exec: &dyn Executor, scale: Scale) -> Vec<BeyondRow> {
    let workloads: Vec<_> = registry::runnable()
        .into_iter()
        .filter(|w| !w.meta.examined)
        .collect();
    let pipelines: Vec<_> = workloads
        .iter()
        .map(|w| w.pipeline(scale).expect("extras build"))
        .collect();
    let discrete = SystemConfig::discrete();
    let heterogeneous = SystemConfig::heterogeneous();
    let jobs: Vec<JobSpec<'_>> = workloads
        .iter()
        .zip(&pipelines)
        .flat_map(|(w, pipeline)| {
            let mis = w.meta.misalignment_sensitive;
            [
                JobSpec {
                    pipeline,
                    config: &discrete,
                    organization: Organization::Serial,
                    misalignment_sensitive: mis,
                },
                JobSpec {
                    pipeline,
                    config: &heterogeneous,
                    organization: Organization::Serial,
                    misalignment_sensitive: mis,
                },
            ]
        })
        .collect();
    let mut reports = exec
        .execute_batch(&jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("beyond46 {e}")));
    workloads
        .iter()
        .map(|w| {
            let copy = reports.next().expect("one report per job");
            let limited = reports.next().expect("one report per job");
            BeyondRow {
                name: w.meta.full_name(),
                copy_share: copy.busy.copy.fraction_of(copy.roi),
                limited_rel: limited.roi.fraction_of(copy.roi),
                faults: limited.faults,
            }
        })
        .collect()
}

/// Renders the beyond-46 characterization.
pub fn render(rows: &[BeyondRow]) -> String {
    let mut t = TextTable::new(&["benchmark", "copy share", "limited/copy time", "faults"]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            pct(r.copy_share),
            format!("{:.2}", r.limited_rel),
            r.faults.to_string(),
        ]);
    }
    format!(
        "Beyond the paper's 46 — the 12 benchmarks gem5-gpu could not run, same comparison\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_twelve_extras_characterize() {
        let rows = beyond46(Scale::TEST);
        assert_eq!(rows.len(), 12);
        for r in &rows {
            assert!(r.limited_rel > 0.0, "{}", r.name);
            assert!((0.0..=1.0).contains(&r.copy_share), "{}", r.name);
        }
    }

    #[test]
    fn serial_ode_solver_gains_least() {
        // myocyte's dependent solver chain has almost nothing to overlap or
        // uncopy: its limited/copy ratio should sit near 1.
        let rows = beyond46(Scale::TEST);
        let myo = rows.iter().find(|r| r.name == "rodinia/myocyte").unwrap();
        assert!(
            (0.5..=1.3).contains(&myo.limited_rel),
            "myocyte ratio {}",
            myo.limited_rel
        );
    }

    #[test]
    fn render_lists_extras() {
        let rows = beyond46(Scale::TEST);
        let s = render(&rows);
        assert!(s.contains("rodinia/btree"));
        assert!(s.contains("parboil/tpacf"));
    }
}
