//! Experiments over the §VI optimization directions: kernel fusion,
//! model-driven compute migration, and footprint-aware chunk sizing. These
//! go beyond the paper's measurements — they *apply* the optimizations the
//! paper recommends and measure what they buy on the workload models.

use heteropipe_workloads::{registry, Scale};

use crate::classify::AccessClass;
use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::organize::Organization;
use crate::render::{pct, TextTable};
use crate::transform::{auto_migrate, fuse_adjacent_kernels, suggest_chunks};

fn exec_run(
    exec: &dyn Executor,
    pipeline: &heteropipe_workloads::Pipeline,
    config: &SystemConfig,
    organization: Organization,
    misalignment_sensitive: bool,
) -> crate::report::RunReport {
    exec.execute(&JobSpec {
        pipeline,
        config,
        organization,
        misalignment_sensitive,
    })
}

/// One benchmark's kernel-fusion outcome.
#[derive(Debug, Clone)]
pub struct FusionRow {
    /// `suite/bench`.
    pub name: String,
    /// Kernels merged away.
    pub fused: usize,
    /// Run time after fusion relative to before (heterogeneous, serial).
    pub rel_runtime: f64,
    /// W-R spill fraction of off-chip accesses before fusion.
    pub spills_before: f64,
    /// ...and after.
    pub spills_after: f64,
}

/// Applies kernel fusion to every examined benchmark where it fires and
/// measures the gain on the heterogeneous processor.
pub fn fusion_study(scale: Scale) -> Vec<FusionRow> {
    fusion_study_with(&DirectExecutor::new(), scale)
}

/// [`fusion_study`] through an explicit [`Executor`].
pub fn fusion_study_with(exec: &dyn Executor, scale: Scale) -> Vec<FusionRow> {
    let cfg = SystemConfig::heterogeneous();
    let mut out = Vec::new();
    for w in registry::examined() {
        let p = w.pipeline(scale).expect("builds");
        let (fused_p, fused) = fuse_adjacent_kernels(&p);
        if fused == 0 {
            continue;
        }
        let mis = w.meta.misalignment_sensitive;
        let before = exec_run(exec, &p, &cfg, Organization::Serial, mis);
        let after = exec_run(exec, &fused_p, &cfg, Organization::Serial, mis);
        let spill_frac = |r: &crate::report::RunReport| {
            let t = r.classes.total().max(1) as f64;
            (r.classes.get(AccessClass::WrSpill) + r.classes.get(AccessClass::RrSpill)) as f64 / t
        };
        out.push(FusionRow {
            name: w.meta.full_name(),
            fused,
            rel_runtime: after.roi.fraction_of(before.roi),
            spills_before: spill_frac(&before),
            spills_after: spill_frac(&after),
        });
    }
    out
}

/// Renders the fusion study.
pub fn render_fusion(rows: &[FusionRow]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "kernels fused",
        "rel.time",
        "spills before",
        "spills after",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            r.fused.to_string(),
            format!("{:.2}", r.rel_runtime),
            pct(r.spills_before),
            pct(r.spills_after),
        ]);
    }
    format!(
        "Kernel fusion study (§VI / [36]): producer-consumer kernels merged, heterogeneous processor\n\n{}",
        t.render()
    )
}

/// One benchmark's auto-migration outcome.
#[derive(Debug, Clone)]
pub struct MigrateRow {
    /// `suite/bench`.
    pub name: String,
    /// CPU stages the cost model chose to migrate.
    pub migrated: usize,
    /// Run time after migration relative to before (heterogeneous, serial).
    pub rel_runtime: f64,
}

/// Applies model-driven compute migration to every examined benchmark.
pub fn migrate_study(scale: Scale) -> Vec<MigrateRow> {
    migrate_study_with(&DirectExecutor::new(), scale)
}

/// [`migrate_study`] through an explicit [`Executor`].
pub fn migrate_study_with(exec: &dyn Executor, scale: Scale) -> Vec<MigrateRow> {
    let cfg = SystemConfig::heterogeneous();
    let mut out = Vec::new();
    for w in registry::examined() {
        let p = w.pipeline(scale).expect("builds");
        let (m, migrated) = auto_migrate(&p, &cfg);
        if migrated == 0 {
            continue;
        }
        let mis = w.meta.misalignment_sensitive;
        let before = exec_run(exec, &p, &cfg, Organization::Serial, mis);
        let after = exec_run(exec, &m, &cfg, Organization::Serial, mis);
        out.push(MigrateRow {
            name: w.meta.full_name(),
            migrated,
            rel_runtime: after.roi.fraction_of(before.roi),
        });
    }
    out
}

/// Renders the migration study.
pub fn render_migrate_study(rows: &[MigrateRow]) -> String {
    let mut t = TextTable::new(&["benchmark", "stages migrated", "rel.time"]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            r.migrated.to_string(),
            format!("{:.2}", r.rel_runtime),
        ]);
    }
    format!(
        "Model-driven compute migration study (§VI): CPU stages rewritten as kernels where the bounds models predict a win\n\n{}",
        t.render()
    )
}

/// One benchmark's chunk-suggestion outcome.
#[derive(Debug, Clone)]
pub struct ChunkRow {
    /// `suite/bench`.
    pub name: String,
    /// The footprint-model suggestion.
    pub suggested: u32,
    /// Run time at the suggestion, relative to hetero serial.
    pub rel_suggested: f64,
    /// Best run time found by sweeping {2,4,8,16,32}, relative.
    pub rel_best: f64,
}

/// Compares the concurrent-footprint chunk suggestion against an oracle
/// sweep on the pipeline-parallelizable Rodinia benchmarks.
pub fn chunk_suggestion_study(scale: Scale) -> Vec<ChunkRow> {
    chunk_suggestion_study_with(&DirectExecutor::new(), scale)
}

/// [`chunk_suggestion_study`] through an explicit [`Executor`].
pub fn chunk_suggestion_study_with(exec: &dyn Executor, scale: Scale) -> Vec<ChunkRow> {
    let cfg = SystemConfig::heterogeneous();
    let mut out = Vec::new();
    for name in [
        "rodinia/kmeans",
        "rodinia/strmclstr",
        "rodinia/backprop",
        "parboil/stencil",
    ] {
        let w = registry::find(name).expect("exists");
        let p = w.pipeline(scale).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        let serial = exec_run(exec, &p, &cfg, Organization::Serial, mis).roi;
        let suggested = suggest_chunks(&p, &cfg);
        let at = |chunks: u32| {
            exec_run(
                exec,
                &p,
                &cfg,
                Organization::ChunkedParallel { chunks },
                mis,
            )
            .roi
            .fraction_of(serial)
        };
        let rel_suggested = at(suggested);
        let rel_best = [2u32, 4, 8, 16, 32]
            .into_iter()
            .map(at)
            .fold(f64::INFINITY, f64::min);
        out.push(ChunkRow {
            name: name.to_string(),
            suggested,
            rel_suggested,
            rel_best,
        });
    }
    out
}

/// Renders the chunk-suggestion study.
pub fn render_chunks(rows: &[ChunkRow]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "suggested",
        "rel.time @suggested",
        "rel.time @oracle",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            r.suggested.to_string(),
            format!("{:.2}", r.rel_suggested),
            format!("{:.2}", r.rel_best),
        ]);
    }
    format!(
        "Footprint-aware chunk sizing (§VI): suggestion vs oracle sweep, heterogeneous processor\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fusion_fires_and_rarely_hurts() {
        let rows = fusion_study(Scale::TEST);
        assert!(
            rows.len() >= 5,
            "fusion should fire on several benchmarks: {}",
            rows.len()
        );
        let hurt = rows.iter().filter(|r| r.rel_runtime > 1.1).count();
        assert!(
            hurt * 3 <= rows.len(),
            "fusion regressed on too many benchmarks: {hurt}/{}",
            rows.len()
        );
    }

    #[test]
    fn fusion_reduces_spills_where_it_fires() {
        let rows = fusion_study(Scale::TEST);
        let improved = rows
            .iter()
            .filter(|r| r.spills_after <= r.spills_before + 1e-9)
            .count();
        assert!(improved * 2 >= rows.len(), "{rows:#?}");
    }

    #[test]
    fn migration_targets_cpu_heavy_benchmarks() {
        let rows = migrate_study(Scale::TEST);
        let dwt = rows.iter().find(|r| r.name == "rodinia/dwt");
        assert!(dwt.is_some(), "dwt must be a migration target");
        assert!(dwt.unwrap().rel_runtime < 0.9);
    }

    #[test]
    fn chunk_suggestion_close_to_oracle() {
        let rows = chunk_suggestion_study(Scale::new(0.5));
        for r in &rows {
            assert!(
                r.rel_suggested <= r.rel_best * 1.25 + 0.05,
                "{}: suggested {} vs best {}",
                r.name,
                r.rel_suggested,
                r.rel_best
            );
        }
    }

    #[test]
    fn renders() {
        let f = fusion_study(Scale::TEST);
        assert!(render_fusion(&f).contains("fusion"));
        let m = migrate_study(Scale::TEST);
        assert!(render_migrate_study(&m).contains("migration"));
    }
}
