//! Fig. 3 — the kmeans case study: run time and component activity for five
//! progressively optimized organizations.
//!
//! Paper reference points (kdd-scale input): the baseline spends >50% of run
//! time copying at 18% GPU utilization; asynchronous streams improve run
//! time ~37%; removing copies ~2x; chunked producer-consumer execution
//! ("Parallel", estimated in the paper) another ~40%; and cache-resident
//! chunk hand-off ("Parallel + Cache", simulated) another ~32%, reaching
//! ~80% GPU utilization — 77% of baseline run time recovered in total.

use heteropipe_sim::Ps;
use heteropipe_workloads::{registry, Scale};

use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::models::component_overlap;
use crate::organize::Organization;
use crate::render::{pct, stacked_bar, TextTable};

/// One bar of Fig. 3.
#[derive(Debug, Clone)]
pub struct Fig3Row {
    /// Organization label as the paper names it.
    pub label: &'static str,
    /// Whether this row is an analytical estimate (the paper marks these
    /// with `*`).
    pub estimated: bool,
    /// Run time relative to the baseline.
    pub rel_runtime: f64,
    /// Copy / CPU / GPU busy portions of this row's own run time.
    pub portions: (f64, f64, f64),
    /// GPU utilization (busy fraction).
    pub gpu_util: f64,
}

/// Computes the five Fig. 3 rows at `scale`.
pub fn compute(scale: Scale) -> Vec<Fig3Row> {
    compute_with(&DirectExecutor::new(), scale)
}

/// [`compute`] through an explicit [`Executor`].
pub fn compute_with(exec: &dyn Executor, scale: Scale) -> Vec<Fig3Row> {
    let kmeans = registry::find("rodinia/kmeans")
        .expect("kmeans exists")
        .pipeline(scale)
        .expect("kmeans builds");
    let discrete = SystemConfig::discrete();
    let hetero = SystemConfig::heterogeneous();

    let job = |config, organization| JobSpec {
        pipeline: &kmeans,
        config,
        organization,
        misalignment_sensitive: false,
    };
    let mut reports = exec
        .execute_batch(&[
            job(&discrete, Organization::Serial),
            job(&discrete, Organization::AsyncStreams { streams: 3 }),
            job(&hetero, Organization::Serial),
            job(&hetero, Organization::ChunkedParallel { chunks: 8 }),
        ])
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("fig3 {e}")));
    let baseline = reports.next().unwrap();
    let async_copy = reports.next().unwrap();
    let no_copy = reports.next().unwrap();
    // "Parallel + Cache": actually simulating the chunked organization,
    // which picks up the cache-resident hand-off too.
    let parallel_cache = reports.next().unwrap();
    // "Parallel": the paper's estimate of chunked overlap without the cache
    // effect — the component-overlap model applied to the no-copy run.
    let parallel_est = component_overlap(&no_copy);

    let base = baseline.roi;
    let row = |label, estimated, roi: Ps, busy: crate::report::ComponentTimes| Fig3Row {
        label,
        estimated,
        rel_runtime: roi.fraction_of(base),
        portions: busy.portions(roi),
        gpu_util: busy.gpu.fraction_of(roi),
    };
    vec![
        row("Baseline", false, baseline.roi, baseline.busy),
        row("Asynchronous Copy", false, async_copy.roi, async_copy.busy),
        row("No Memory Copy", false, no_copy.roi, no_copy.busy),
        // The estimate keeps the no-copy busy times compressed into the
        // overlapped window.
        Fig3Row {
            label: "Parallel (*)",
            estimated: true,
            rel_runtime: parallel_est.fraction_of(base),
            portions: (
                no_copy.busy.copy.fraction_of(parallel_est).min(1.0),
                no_copy.busy.cpu.fraction_of(parallel_est).min(1.0),
                no_copy.busy.gpu.fraction_of(parallel_est).min(1.0),
            ),
            gpu_util: no_copy.busy.gpu.fraction_of(parallel_est).min(1.0),
        },
        row(
            "Parallel + Cache",
            false,
            parallel_cache.roi,
            parallel_cache.busy,
        ),
    ]
}

/// Renders the rows as a paper-style table with activity bars.
pub fn render(rows: &[Fig3Row]) -> String {
    let mut t = TextTable::new(&[
        "organization",
        "rel.time",
        "copy",
        "cpu",
        "gpu",
        "gpu util",
        "activity (60 cols = baseline)",
    ]);
    for r in rows {
        let (p, c, g) = r.portions;
        let bar = stacked_bar(
            &[
                ('#', p * r.rel_runtime),
                ('c', c * r.rel_runtime),
                ('G', g * r.rel_runtime),
            ],
            r.rel_runtime,
            60,
        );
        t.row_owned(vec![
            r.label.to_string(),
            format!("{:.2}", r.rel_runtime),
            pct(p),
            pct(c),
            pct(g),
            pct(r.gpu_util),
            bar,
        ]);
    }
    format!(
        "Fig. 3 — kmeans case study (activity bar: #=copy c=cpu G=gpu)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_study_shape_holds() {
        // Use a moderate scale so launch overheads do not dominate.
        let rows = compute(Scale::new(0.5));
        assert_eq!(rows.len(), 5);
        let by = |l: &str| rows.iter().find(|r| r.label.starts_with(l)).unwrap();
        let baseline = by("Baseline");
        let async_copy = by("Asynchronous");
        let no_copy = by("No Memory");
        let parallel = by("Parallel (*)");
        let cached = by("Parallel + Cache");

        // Baseline: copies dominate (paper: >50%), GPU under-utilized.
        assert!(
            baseline.portions.0 > 0.40,
            "copy portion {}",
            baseline.portions.0
        );
        assert!(baseline.gpu_util < 0.40, "gpu util {}", baseline.gpu_util);
        // Each optimization step improves run time.
        assert!(async_copy.rel_runtime < 0.95);
        assert!(no_copy.rel_runtime < async_copy.rel_runtime);
        assert!(parallel.rel_runtime < no_copy.rel_runtime);
        assert!(cached.rel_runtime <= parallel.rel_runtime * 1.15);
        // The full pipeline recovers well over half the baseline run time
        // (paper: 77%).
        assert!(cached.rel_runtime < 0.5, "final rel {}", cached.rel_runtime);
        // GPU utilization climbs monotonically-ish to a high value.
        assert!(cached.gpu_util > 0.55, "final util {}", cached.gpu_util);
        assert!(cached.gpu_util > baseline.gpu_util + 0.25);
    }

    #[test]
    fn render_contains_all_rows() {
        let rows = compute(Scale::TEST);
        let s = render(&rows);
        for label in ["Baseline", "Asynchronous", "No Memory", "Parallel"] {
            assert!(s.contains(label), "missing {label}");
        }
    }
}
