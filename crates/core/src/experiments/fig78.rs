//! Figs. 7 and 8 — the analytical estimates applied to every benchmark:
//! component-overlap (Eq. 1) and migrated-compute (Eq. 2-4), for copy and
//! limited-copy versions, normalized to the baseline copy run time.

use crate::config::SystemConfig;
use crate::experiments::characterize::{geomean, BenchPair};
use crate::models::{component_overlap, migrated_compute};
use crate::render::TextTable;

/// One benchmark's estimate pair for one model.
#[derive(Debug, Clone)]
pub struct EstimateRow {
    /// `suite/bench`.
    pub name: String,
    /// Measured copy run time (always 1.0 by normalization).
    pub copy_measured: f64,
    /// Estimate applied to the copy version, relative to copy run time.
    pub copy_est: f64,
    /// Measured limited-copy run time, relative to copy run time.
    pub limited_measured: f64,
    /// Estimate applied to the limited-copy version, relative.
    pub limited_est: f64,
}

/// Computes Fig. 7 (component-overlap estimates).
pub fn fig7(pairs: &[BenchPair]) -> Vec<EstimateRow> {
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.roi;
            EstimateRow {
                name: p.meta.full_name(),
                copy_measured: 1.0,
                copy_est: component_overlap(&p.copy).fraction_of(base),
                limited_measured: p.limited.roi.fraction_of(base),
                limited_est: component_overlap(&p.limited).fraction_of(base),
            }
        })
        .collect()
}

/// Computes Fig. 8 (migrated-compute estimates).
pub fn fig8(pairs: &[BenchPair]) -> Vec<EstimateRow> {
    let discrete = SystemConfig::discrete();
    let hetero = SystemConfig::heterogeneous();
    pairs
        .iter()
        .map(|p| {
            let base = p.copy.roi;
            EstimateRow {
                name: p.meta.full_name(),
                copy_measured: 1.0,
                copy_est: migrated_compute(&p.copy, &discrete).fraction_of(base),
                limited_measured: p.limited.roi.fraction_of(base),
                limited_est: migrated_compute(&p.limited, &hetero).fraction_of(base),
            }
        })
        .collect()
}

fn estimate_table(rows: &[EstimateRow]) -> TextTable {
    let mut t = TextTable::new(&["benchmark", "copy est", "limited meas", "limited est"]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            format!("{:.2}", r.copy_est),
            format!("{:.2}", r.limited_measured),
            format!("{:.2}", r.limited_est),
        ]);
    }
    t
}

/// Fig. 7 or Fig. 8 rows as CSV (both share the estimate-row schema).
pub fn csv_estimates(rows: &[EstimateRow]) -> String {
    estimate_table(rows).to_csv()
}

fn render(rows: &[EstimateRow], title: &str, note: &str) -> String {
    let gm_copy = geomean(rows.iter().map(|r| r.copy_est));
    let gm_limited = geomean(rows.iter().map(|r| r.limited_est));
    format!(
        "{title} (relative to baseline copy run time)\n\n{}\ngeomean estimates: copy {:.3}, limited-copy {:.3}\n{note}\n",
        estimate_table(rows).render(),
        gm_copy,
        gm_limited,
    )
}

/// Renders Fig. 7.
pub fn render_fig7(rows: &[EstimateRow]) -> String {
    render(
        rows,
        "Fig. 7 — component-overlap run time estimates (Eq. 1)",
        "paper: overlap largely closes the copy vs limited-copy gap",
    )
}

/// Renders Fig. 8.
pub fn render_fig8(rows: &[EstimateRow]) -> String {
    render(
        rows,
        "Fig. 8 — migrated-compute run time estimates (Eq. 2-4)",
        "paper: full utilization buys another 4-13% commonly, more when CPU-dominated",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::characterize::characterize_filtered;
    use heteropipe_workloads::Scale;

    fn pairs() -> Vec<BenchPair> {
        characterize_filtered(Scale::TEST, |m| ["kmeans", "dwt", "bfs"].contains(&m.name))
    }

    #[test]
    fn estimates_never_exceed_measured() {
        for rows in [fig7(&pairs()), fig8(&pairs())] {
            for r in &rows {
                assert!(
                    r.copy_est <= 1.0 + 1e-9,
                    "{}: overlap/migrate estimate must not exceed serial time",
                    r.name
                );
                assert!(
                    r.limited_est <= r.limited_measured + 1e-9,
                    "{}: {} > {}",
                    r.name,
                    r.limited_est,
                    r.limited_measured
                );
            }
        }
    }

    #[test]
    fn migrate_is_at_least_as_aggressive_as_overlap() {
        let f7 = fig7(&pairs());
        let f8 = fig8(&pairs());
        for (a, b) in f7.iter().zip(&f8) {
            assert_eq!(a.name, b.name);
            assert!(
                b.limited_est <= a.limited_est + 1e-9,
                "{}: migrate {} vs overlap {}",
                a.name,
                b.limited_est,
                a.limited_est
            );
        }
    }

    #[test]
    fn cpu_dominated_benchmarks_gain_most_from_migration() {
        let rows = fig8(&pairs());
        let dwt = rows.iter().find(|r| r.name.contains("dwt")).unwrap();
        // dwt's serial CPU packing shrinks dramatically when migrated.
        assert!(
            dwt.limited_est < 0.6 * dwt.limited_measured,
            "dwt migrate {} vs measured {}",
            dwt.limited_est,
            dwt.limited_measured
        );
    }

    #[test]
    fn renders() {
        let p = pairs();
        assert!(render_fig7(&fig7(&p)).contains("Eq. 1"));
        assert!(render_fig8(&fig8(&p)).contains("Eq. 2-4"));
    }
}
