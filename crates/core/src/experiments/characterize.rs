//! The shared characterization pass behind Figs. 4-9: every examined
//! benchmark run twice — its copy version on the discrete GPU system and
//! its limited-copy version on the heterogeneous processor — exactly the
//! paired bars of the paper's plots.

use heteropipe_workloads::{registry, BenchMeta, Scale};

use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::organize::Organization;
use crate::report::RunReport;

/// One benchmark's paired runs.
#[derive(Debug, Clone)]
pub struct BenchPair {
    /// Table II metadata.
    pub meta: BenchMeta,
    /// Copy version on the discrete system (left bars).
    pub copy: RunReport,
    /// Limited-copy version on the heterogeneous processor (right bars).
    pub limited: RunReport,
}

/// Runs the full characterization at `scale` over all 46 examined
/// benchmarks, in parallel across OS threads. Results are ordered by
/// suite then name (the paper's plotting order).
pub fn characterize_all(scale: Scale) -> Vec<BenchPair> {
    characterize_filtered(scale, |_| true)
}

/// Runs the characterization for the benchmarks accepted by `filter`.
pub fn characterize_filtered(scale: Scale, filter: impl Fn(&BenchMeta) -> bool) -> Vec<BenchPair> {
    characterize_filtered_with(&DirectExecutor::new(), scale, filter)
}

/// [`characterize_all`] through an explicit [`Executor`].
pub fn characterize_all_with(exec: &dyn Executor, scale: Scale) -> Vec<BenchPair> {
    characterize_filtered_with(exec, scale, |_| true)
}

/// [`characterize_filtered`] through an explicit [`Executor`]: the batch of
/// 2N runs (discrete copy + heterogeneous limited-copy per benchmark) goes
/// through `exec`, which schedules, caches, and meters it.
pub fn characterize_filtered_with(
    exec: &dyn Executor,
    scale: Scale,
    filter: impl Fn(&BenchMeta) -> bool,
) -> Vec<BenchPair> {
    let workloads: Vec<_> = registry::examined()
        .into_iter()
        .filter(|w| filter(&w.meta))
        .collect();
    let pipelines: Vec<_> = workloads
        .iter()
        .map(|w| w.pipeline(scale).expect("examined workloads build"))
        .collect();
    let discrete = SystemConfig::discrete();
    let heterogeneous = SystemConfig::heterogeneous();

    let jobs: Vec<JobSpec<'_>> = workloads
        .iter()
        .zip(&pipelines)
        .flat_map(|(w, pipeline)| {
            let mis = w.meta.misalignment_sensitive;
            [
                JobSpec {
                    pipeline,
                    config: &discrete,
                    organization: Organization::Serial,
                    misalignment_sensitive: mis,
                },
                JobSpec {
                    pipeline,
                    config: &heterogeneous,
                    organization: Organization::Serial,
                    misalignment_sensitive: mis,
                },
            ]
        })
        .collect();

    let mut reports = exec
        .execute_batch(&jobs)
        .into_iter()
        .map(|r| r.unwrap_or_else(|e| panic!("characterization {e}")));

    workloads
        .into_iter()
        .map(|w| {
            let copy = reports.next().expect("one report per job");
            let limited = reports.next().expect("one report per job");
            BenchPair {
                meta: w.meta,
                copy,
                limited,
            }
        })
        .collect()
}

/// Geometric mean of positive ratios (the paper's aggregate statistic).
pub fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let mut sum_ln = 0.0;
    let mut n = 0u32;
    for r in ratios {
        if r > 0.0 && r.is_finite() {
            sum_ln += r.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum_ln / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        // Non-finite and non-positive entries are skipped.
        assert!((geomean([1.0, f64::NAN, 0.0, 4.0].into_iter()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn characterize_subset_runs_both_platforms() {
        let pairs =
            characterize_filtered(Scale::TEST, |m| m.name == "kmeans" || m.name == "backprop");
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert!(p.copy.roi > heteropipe_sim::Ps::ZERO);
            assert!(p.limited.roi > heteropipe_sim::Ps::ZERO);
            assert_eq!(p.copy.platform, crate::Platform::DiscreteGpu);
            assert_eq!(p.limited.platform, crate::Platform::Heterogeneous);
        }
    }

    #[test]
    fn explicit_executor_matches_default_path() {
        let filter = |m: &BenchMeta| m.name == "kmeans";
        let default = characterize_filtered(Scale::TEST, filter);
        let explicit =
            characterize_filtered_with(&DirectExecutor::with_jobs(1), Scale::TEST, filter);
        assert_eq!(default.len(), explicit.len());
        assert_eq!(default[0].copy, explicit[0].copy);
        assert_eq!(default[0].limited, explicit[0].limited);
    }
}
