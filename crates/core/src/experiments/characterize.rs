//! The shared characterization pass behind Figs. 4-9: every examined
//! benchmark run twice — its copy version on the discrete GPU system and
//! its limited-copy version on the heterogeneous processor — exactly the
//! paired bars of the paper's plots.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use heteropipe_workloads::{registry, BenchMeta, Scale};

use crate::config::SystemConfig;
use crate::organize::Organization;
use crate::report::RunReport;
use crate::run::run;

/// One benchmark's paired runs.
#[derive(Debug, Clone)]
pub struct BenchPair {
    /// Table II metadata.
    pub meta: BenchMeta,
    /// Copy version on the discrete system (left bars).
    pub copy: RunReport,
    /// Limited-copy version on the heterogeneous processor (right bars).
    pub limited: RunReport,
}

/// Runs the full characterization at `scale` over all 46 examined
/// benchmarks, in parallel across OS threads. Results are ordered by
/// suite then name (the paper's plotting order).
pub fn characterize_all(scale: Scale) -> Vec<BenchPair> {
    characterize_filtered(scale, |_| true)
}

/// Runs the characterization for the benchmarks accepted by `filter`.
pub fn characterize_filtered(scale: Scale, filter: impl Fn(&BenchMeta) -> bool) -> Vec<BenchPair> {
    let workloads: Vec<_> = registry::examined()
        .into_iter()
        .filter(|w| filter(&w.meta))
        .collect();
    let n = workloads.len();
    let results: Mutex<Vec<Option<BenchPair>>> = Mutex::new(vec![None; n]);
    let cursor = AtomicUsize::new(0);
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n.max(1));

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let w = &workloads[i];
                let pipeline = w.pipeline(scale).expect("examined workloads build");
                let mis = w.meta.misalignment_sensitive;
                let copy = run(
                    &pipeline,
                    &SystemConfig::discrete(),
                    Organization::Serial,
                    mis,
                );
                let limited = run(
                    &pipeline,
                    &SystemConfig::heterogeneous(),
                    Organization::Serial,
                    mis,
                );
                results.lock().unwrap()[i] = Some(BenchPair {
                    meta: w.meta,
                    copy,
                    limited,
                });
            });
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|p| p.expect("all benchmarks characterized"))
        .collect()
}

/// Geometric mean of positive ratios (the paper's aggregate statistic).
pub fn geomean(ratios: impl Iterator<Item = f64>) -> f64 {
    let mut sum_ln = 0.0;
    let mut n = 0u32;
    for r in ratios {
        if r > 0.0 && r.is_finite() {
            sum_ln += r.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (sum_ln / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        // Non-finite and non-positive entries are skipped.
        assert!((geomean([1.0, f64::NAN, 0.0, 4.0].into_iter()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn characterize_subset_runs_both_platforms() {
        let pairs =
            characterize_filtered(Scale::TEST, |m| m.name == "kmeans" || m.name == "backprop");
        assert_eq!(pairs.len(), 2);
        for p in &pairs {
            assert!(p.copy.roi > heteropipe_sim::Ps::ZERO);
            assert!(p.limited.roi > heteropipe_sim::Ps::ZERO);
            assert_eq!(p.copy.platform, crate::Platform::DiscreteGpu);
            assert_eq!(p.limited.platform, crate::Platform::Heterogeneous);
        }
    }
}
