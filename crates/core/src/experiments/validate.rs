//! §V-A and §V-B model validations.
//!
//! * **Component-overlap** (§V-A): the paper applies kernel fission + async
//!   streams (discrete) and chunked in-memory signalling (heterogeneous) to
//!   backprop, kmeans, and strmclstr and finds the transformed run times
//!   within 3.1% of the Eq. 1 estimate (caching effects can beat it).
//! * **Migrated-compute** (§V-B): the paper manually rewrites kmeans' and
//!   strmclstr's CPU matrix-vector/reduction stages as GPU kernels, gaining
//!   over 2.5x and landing within 35% of the estimates.

use heteropipe_workloads::{registry, Scale};

use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::models::{component_overlap, migrated_compute};
use crate::organize::Organization;
use crate::render::TextTable;

/// One benchmark's overlap validation.
#[derive(Debug, Clone)]
pub struct OverlapValidation {
    /// `suite/bench`.
    pub name: String,
    /// Serial run time (seconds) on the platform.
    pub serial_secs: f64,
    /// Transformed (streams / chunked) run time.
    pub transformed_secs: f64,
    /// Eq. 1 estimate from the serial run.
    pub estimate_secs: f64,
    /// `|transformed - estimate| / estimate`.
    pub relative_error: f64,
    /// Whether the transform ran on the heterogeneous processor.
    pub heterogeneous: bool,
}

/// Validates the component-overlap model on the paper's three benchmarks,
/// on both platforms, at `scale`.
pub fn validate_overlap(scale: Scale) -> Vec<OverlapValidation> {
    validate_overlap_with(&DirectExecutor::new(), scale)
}

/// [`validate_overlap`] through an explicit [`Executor`].
pub fn validate_overlap_with(exec: &dyn Executor, scale: Scale) -> Vec<OverlapValidation> {
    let mut out = Vec::new();
    for name in ["rodinia/backprop", "rodinia/kmeans", "rodinia/strmclstr"] {
        let w = registry::find(name).expect("validation benchmark exists");
        let p = w.pipeline(scale).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        for hetero in [false, true] {
            let (config, org) = if hetero {
                (
                    SystemConfig::heterogeneous(),
                    Organization::ChunkedParallel { chunks: 8 },
                )
            } else {
                (
                    SystemConfig::discrete(),
                    Organization::AsyncStreams { streams: 8 },
                )
            };
            let job = |organization| JobSpec {
                pipeline: &p,
                config: &config,
                organization,
                misalignment_sensitive: mis,
            };
            let serial = exec.execute(&job(Organization::Serial));
            let transformed = exec.execute(&job(org));
            let estimate = component_overlap(&serial);
            let est = estimate.as_secs_f64();
            let meas = transformed.roi.as_secs_f64();
            out.push(OverlapValidation {
                name: name.to_string(),
                serial_secs: serial.roi.as_secs_f64(),
                transformed_secs: meas,
                estimate_secs: est,
                relative_error: if est > 0.0 {
                    (meas - est).abs() / est
                } else {
                    0.0
                },
                heterogeneous: hetero,
            });
        }
    }
    out
}

/// Renders the overlap validation.
pub fn render_overlap(rows: &[OverlapValidation]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "platform",
        "serial",
        "transformed",
        "estimate",
        "err",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            if r.heterogeneous {
                "hetero"
            } else {
                "discrete"
            }
            .into(),
            format!("{:.3}ms", r.serial_secs * 1e3),
            format!("{:.3}ms", r.transformed_secs * 1e3),
            format!("{:.3}ms", r.estimate_secs * 1e3),
            format!("{:.1}%", r.relative_error * 100.0),
        ]);
    }
    format!(
        "§V-A — component-overlap model validation (paper: within 3.1%; caching can beat the estimate)\n\n{}",
        t.render()
    )
}

pub use crate::transform::migrate_cpu_stages_to_gpu;

/// One benchmark's migrated-compute validation.
#[derive(Debug, Clone)]
pub struct MigrateValidation {
    /// `suite/bench`.
    pub name: String,
    /// Baseline (copy, serial, discrete) run time in seconds.
    pub baseline_secs: f64,
    /// Simulated run time with CPU stages migrated to the GPU
    /// (heterogeneous processor, chunked).
    pub migrated_secs: f64,
    /// The Eq. 2-4 estimate from the baseline's limited-copy run.
    pub estimate_secs: f64,
    /// Speedup of the migrated version over the baseline.
    pub speedup: f64,
    /// `|migrated - estimate| / estimate`.
    pub relative_error: f64,
}

/// Validates the migrated-compute model on kmeans and strmclstr.
pub fn validate_migrate(scale: Scale) -> Vec<MigrateValidation> {
    validate_migrate_with(&DirectExecutor::new(), scale)
}

/// [`validate_migrate`] through an explicit [`Executor`].
pub fn validate_migrate_with(exec: &dyn Executor, scale: Scale) -> Vec<MigrateValidation> {
    let hetero = SystemConfig::heterogeneous();
    let discrete = SystemConfig::discrete();
    let mut out = Vec::new();
    for name in ["rodinia/kmeans", "rodinia/strmclstr"] {
        let w = registry::find(name).expect("exists");
        let p = w.pipeline(scale).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        let job = |pipeline, config, organization| JobSpec {
            pipeline,
            config,
            organization,
            misalignment_sensitive: mis,
        };
        let baseline = exec.execute(&job(&p, &discrete, Organization::Serial));
        let limited = exec.execute(&job(&p, &hetero, Organization::Serial));
        let migrated_pipeline = migrate_cpu_stages_to_gpu(&p);
        let migrated = exec.execute(&job(
            &migrated_pipeline,
            &hetero,
            Organization::ChunkedParallel { chunks: 4 },
        ));
        let est = migrated_compute(&limited, &hetero).as_secs_f64();
        let meas = migrated.roi.as_secs_f64();
        out.push(MigrateValidation {
            name: name.to_string(),
            baseline_secs: baseline.roi.as_secs_f64(),
            migrated_secs: meas,
            estimate_secs: est,
            speedup: baseline.roi.as_secs_f64() / meas,
            relative_error: if est > 0.0 {
                (meas - est).abs() / est
            } else {
                0.0
            },
        });
    }
    out
}

/// Renders the migrate validation.
pub fn render_migrate(rows: &[MigrateValidation]) -> String {
    let mut t = TextTable::new(&[
        "benchmark",
        "baseline",
        "migrated",
        "estimate",
        "speedup",
        "err",
    ]);
    for r in rows {
        t.row_owned(vec![
            r.name.clone(),
            format!("{:.3}ms", r.baseline_secs * 1e3),
            format!("{:.3}ms", r.migrated_secs * 1e3),
            format!("{:.3}ms", r.estimate_secs * 1e3),
            format!("{:.2}x", r.speedup),
            format!("{:.0}%", r.relative_error * 100.0),
        ]);
    }
    format!(
        "§V-B — migrated-compute validation (paper: >2.5x speedup, within 35% of estimate)\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_workloads::ExecKind;

    #[test]
    fn overlap_estimates_track_transformed_runs() {
        let rows = validate_overlap(Scale::new(0.5));
        assert_eq!(rows.len(), 6);
        for r in &rows {
            // Benchmarks with little overlappable CPU work (backprop's
            // reduction is small) can pay more in per-chunk launch
            // overhead than they gain; allow a bounded regression.
            assert!(
                r.transformed_secs <= r.serial_secs * 1.10,
                "{} ({}): transform regressed: {} vs {}",
                r.name,
                r.heterogeneous,
                r.transformed_secs,
                r.serial_secs
            );
            // The estimate is optimistic but in the right neighbourhood
            // (the paper saw <=3.1%; we allow model slack plus the cache
            // upside where measurement beats estimate).
            assert!(
                r.relative_error < 0.35,
                "{} ({}): error {:.2}",
                r.name,
                r.heterogeneous,
                r.relative_error
            );
        }
    }

    #[test]
    fn migration_transform_rewrites_cpu_stages() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let m = migrate_cpu_stages_to_gpu(&p);
        let cpu_stages = m
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .filter(|c| c.exec == ExecKind::Cpu)
            .count();
        assert_eq!(cpu_stages, 0);
        assert!(m.name.ends_with("+migrated"));
        assert_eq!(m.validate(), Ok(()));
    }

    #[test]
    fn migration_speeds_up_cpu_heavy_benchmarks() {
        let rows = validate_migrate(Scale::new(0.5));
        for r in &rows {
            assert!(
                r.speedup > 2.0,
                "{}: speedup only {:.2}x",
                r.name,
                r.speedup
            );
        }
    }

    #[test]
    fn renders() {
        let rows = validate_overlap(Scale::TEST);
        assert!(render_overlap(&rows).contains("3.1%"));
        let rows = validate_migrate(Scale::TEST);
        assert!(render_migrate(&rows).contains("2.5x"));
    }
}
