//! Tables I and II.

use heteropipe_workloads::registry;

use crate::config::SystemConfig;
use crate::render::TextTable;

/// Renders Table I — the heterogeneous system parameters — from the live
/// configuration objects (so the table can never drift from the code).
pub fn render_table1() -> String {
    let d = SystemConfig::discrete();
    let h = SystemConfig::heterogeneous();
    let cpu = &d.cpu;
    let gpu = &d.gpu;
    let hc = &d.hierarchy;

    let mut t = TextTable::new(&["component", "parameters"]);
    t.row_owned(vec![
        "CPU Cores".into(),
        format!(
            "({}) {}-wide out-of-order, x86-class, {:.1}GHz, {:.0} GFLOP/s peak each",
            cpu.cores,
            cpu.issue_width,
            cpu.clock.freq_hz() / 1e9,
            cpu.peak_flops_per_core / 1e9
        ),
    ]);
    t.row_owned(vec![
        "CPU Caches".into(),
        format!(
            "per-core {}kB L1D and private {}kB L2, 128B lines",
            hc.cpu_l1d.capacity_bytes() / 1024,
            hc.cpu_l2.capacity_bytes() / 1024
        ),
    ]);
    t.row_owned(vec![
        "GPU Cores".into(),
        format!(
            "({}) {} CTAs, {} warps of 32 threads, {:.0}MHz, {}kB scratch, {}k registers, greedy-then-oldest",
            gpu.sms,
            gpu.max_ctas_per_sm,
            gpu.max_warps_per_sm,
            gpu.clock.freq_hz() / 1e6,
            gpu.scratch_bytes_per_sm / 1024,
            gpu.registers_per_sm / 1024
        ),
    ]);
    t.row_owned(vec![
        "GPU Caches".into(),
        format!(
            "{}kB L1 per-core; GPU-shared non-inclusive L2 {}MB, 128B lines",
            hc.gpu_l1.capacity_bytes() / 1024,
            hc.gpu_l2.capacity_bytes() / (1024 * 1024)
        ),
    ]);
    t.row_owned(vec![
        "Discrete: interconnects".into(),
        format!(
            "CPU L2s/MCs: {}; GPU L1/L2: dance-hall; GPU L2s/MCs: direct links",
            d.interconnect
        ),
    ]);
    t.row_owned(vec![
        "Discrete: CPU memory".into(),
        d.cpu_mem.expect("discrete").to_string(),
    ]);
    t.row_owned(vec!["Discrete: GPU memory".into(), d.gpu_mem.to_string()]);
    t.row_owned(vec![
        "Discrete: PCIe".into(),
        d.pcie.expect("discrete").to_string(),
    ]);
    t.row_owned(vec![
        "Heterogeneous: interconnects".into(),
        format!("GPU L1/L2: dance-hall; all L2s/MCs: {}", h.interconnect),
    ]);
    t.row_owned(vec![
        "Heterogeneous: memory".into(),
        format!("shared {}", h.gpu_mem),
    ]);
    format!(
        "Table I — heterogeneous system parameters\n\n{}",
        t.render()
    )
}

/// Renders Table II — producer-consumer relationships in benchmarks — from
/// the workload registry census.
pub fn render_table2() -> String {
    let (rows, total) = registry::census();
    let mut t = TextTable::new(&[
        "suite",
        "num bench",
        "p-c comm",
        "pipe paral",
        "regular",
        "irregular",
        "sw queue",
    ]);
    for (suite, r) in &rows {
        t.row_owned(vec![
            suite.to_string(),
            r.benchmarks.to_string(),
            r.pc_comm.to_string(),
            r.pipe_parallel.to_string(),
            r.regular.to_string(),
            r.irregular.to_string(),
            r.sw_queue.to_string(),
        ]);
    }
    t.row_owned(vec![
        "Total".into(),
        total.benchmarks.to_string(),
        total.pc_comm.to_string(),
        total.pipe_parallel.to_string(),
        total.regular.to_string(),
        total.irregular.to_string(),
        total.sw_queue.to_string(),
    ]);
    let p = |x: u32| format!("{:.0}%", 100.0 * x as f64 / total.benchmarks as f64);
    t.row_owned(vec![
        "Portion".into(),
        "100%".into(),
        p(total.pc_comm),
        p(total.pipe_parallel),
        p(total.regular),
        p(total.irregular),
        p(total.sw_queue),
    ]);
    format!(
        "Table II — producer-consumer constructs in benchmarks\n\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_contains_headline_parameters() {
        let s = render_table1();
        for needle in [
            "3.5GHz",
            "700MHz",
            "1MB",
            "24kB",
            "179GB/s",
            "24GB/s",
            "PCIe 8GB/s",
        ] {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn table2_matches_paper_totals() {
        let s = render_table2();
        let total_line = s
            .lines()
            .find(|l| l.starts_with("Total"))
            .expect("total row present");
        let tokens: Vec<&str> = total_line.split_whitespace().collect();
        assert_eq!(tokens, vec!["Total", "58", "51", "49", "51", "32", "11"]);
        assert!(s.contains("88%"), "{s}");
        assert!(s.contains("55%"), "{s}");
        assert!(s.contains("19%"), "{s}");
    }
}
