//! Experiment drivers: one module per paper table/figure plus the §V model
//! validations (see DESIGN.md §4 for the index).

pub mod ablations;
pub mod beyond;
pub mod characterize;
pub mod extensions;
pub mod fig3;
pub mod fig456;
pub mod fig78;
pub mod fig9;
pub mod sensitivity;
pub mod tables;
pub mod validate;

pub use characterize::{
    characterize_all, characterize_all_with, characterize_filtered, characterize_filtered_with,
    geomean, BenchPair,
};
