//! Tornado-style sensitivity analysis: how much each major model constant
//! moves the study's headline metric.
//!
//! A reproduction's conclusions are only as strong as its free parameters.
//! This study varies each calibrated constant to half and double its
//! Table-I-derived value and re-measures the headline copy-removal geomean
//! over a representative benchmark subset (one per structural class:
//! copy-recycling ML, irregular graph, fault-heavy stencil, dense
//! iterative). Parameters whose bars are short cannot be blamed for the
//! reproduced shapes.

use heteropipe_workloads::{registry, Scale};

use crate::config::SystemConfig;
use crate::exec::{DirectExecutor, Executor, JobSpec};
use crate::experiments::characterize::geomean;
use crate::organize::Organization;
use crate::render::TextTable;

/// The benchmark subset the sensitivity metric is computed over.
pub const SUBSET: [&str; 4] = [
    "rodinia/kmeans",
    "pannotia/pr",
    "rodinia/srad",
    "parboil/stencil",
];

/// One parameter's tornado bar.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Parameter name.
    pub parameter: &'static str,
    /// Headline metric with the parameter halved.
    pub at_half: f64,
    /// Headline metric at the calibrated value.
    pub at_nominal: f64,
    /// Headline metric with the parameter doubled.
    pub at_double: f64,
}

impl SensitivityRow {
    /// Width of the tornado bar (max deviation from nominal).
    pub fn swing(&self) -> f64 {
        (self.at_half - self.at_nominal)
            .abs()
            .max((self.at_double - self.at_nominal).abs())
    }
}

/// The headline metric: geomean limited-copy/copy run time over [`SUBSET`],
/// with the heterogeneous side configured by `hetero`.
fn metric(
    exec: &dyn Executor,
    scale: Scale,
    hetero: &SystemConfig,
    discrete: &SystemConfig,
) -> f64 {
    geomean(SUBSET.iter().map(|name| {
        let w = registry::find(name).expect("subset benchmark exists");
        let p = w.pipeline(scale).expect("builds");
        let mis = w.meta.misalignment_sensitive;
        let job = |config| JobSpec {
            pipeline: &p,
            config,
            organization: Organization::Serial,
            misalignment_sensitive: mis,
        };
        let c = exec.execute(&job(discrete));
        let l = exec.execute(&job(hetero));
        l.roi.as_secs_f64() / c.roi.as_secs_f64()
    }))
}

/// Runs the sensitivity study at `scale`. Rows are sorted by swing,
/// largest first (the tornado order).
pub fn sensitivity_study(scale: Scale) -> Vec<SensitivityRow> {
    sensitivity_study_with(&DirectExecutor::new(), scale)
}

/// [`sensitivity_study`] through an explicit [`Executor`]: every halved/
/// doubled variant shares the nominal baseline runs, so a caching engine
/// recomputes only the perturbed side.
pub fn sensitivity_study_with(exec: &dyn Executor, scale: Scale) -> Vec<SensitivityRow> {
    let nominal = metric(
        exec,
        scale,
        &SystemConfig::heterogeneous(),
        &SystemConfig::discrete(),
    );
    type Mutator = fn(&mut SystemConfig, &mut SystemConfig, f64);
    let params: [(&'static str, Mutator); 6] = [
        ("GPU page-fault latency", |h, _d, f| {
            h.gpu.page_fault_latency =
                heteropipe_sim::Ps::from_secs_f64(h.gpu.page_fault_latency.as_secs_f64() * f);
        }),
        ("CPU MLP", |h, d, f| {
            h.cpu = h.cpu.with_mlp((h.cpu.mlp * f).max(1.0));
            d.cpu = d.cpu.with_mlp((d.cpu.mlp * f).max(1.0));
        }),
        ("PCIe bandwidth", |_h, d, f| {
            let p = d.pcie.expect("discrete");
            d.pcie = Some(p.with_peak_bw(p.peak_bw() * f));
        }),
        ("kernel launch latency", |h, d, f| {
            h.cpu.kernel_launch =
                heteropipe_sim::Ps::from_secs_f64(h.cpu.kernel_launch.as_secs_f64() * f);
            d.cpu.kernel_launch = h.cpu.kernel_launch;
        }),
        ("shared-memory bandwidth", |h, _d, f| {
            h.gpu_mem = h.gpu_mem.with_peak_bw(h.gpu_mem.peak_bw() * f);
        }),
        ("residual memcpy rate", |h, _d, f| {
            h.memcpy_rate *= f;
        }),
    ];

    let mut rows: Vec<SensitivityRow> = params
        .into_iter()
        .map(|(name, mutate)| {
            let at = |f: f64| {
                let mut h = SystemConfig::heterogeneous();
                let mut d = SystemConfig::discrete();
                mutate(&mut h, &mut d, f);
                metric(exec, scale, &h, &d)
            };
            SensitivityRow {
                parameter: name,
                at_half: at(0.5),
                at_nominal: nominal,
                at_double: at(2.0),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.swing().partial_cmp(&a.swing()).expect("finite swings"));
    rows
}

/// Renders the tornado table.
pub fn render(rows: &[SensitivityRow]) -> String {
    let mut t = TextTable::new(&["parameter", "x0.5", "nominal", "x2.0", "swing"]);
    for r in rows {
        t.row_owned(vec![
            r.parameter.to_string(),
            format!("{:.3}", r.at_half),
            format!("{:.3}", r.at_nominal),
            format!("{:.3}", r.at_double),
            format!("{:.3}", r.swing()),
        ]);
    }
    format!(
        "Sensitivity tornado — headline limited/copy geomean over {:?} as each model constant is halved/doubled\n\n{}",
        SUBSET,
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tornado_is_sorted_and_finite() {
        let rows = sensitivity_study(Scale::TEST);
        assert_eq!(rows.len(), 6);
        for w in rows.windows(2) {
            assert!(w[0].swing() >= w[1].swing());
        }
        for r in &rows {
            for v in [r.at_half, r.at_nominal, r.at_double] {
                assert!(v.is_finite() && v > 0.0, "{r:?}");
            }
        }
    }

    #[test]
    fn fault_latency_moves_the_metric_directionally() {
        let rows = sensitivity_study(Scale::TEST);
        let fault = rows
            .iter()
            .find(|r| r.parameter == "GPU page-fault latency")
            .unwrap();
        // Cheaper faults make the heterogeneous port look better
        // (lower limited/copy); dearer faults, worse.
        assert!(fault.at_half <= fault.at_nominal + 1e-9, "{fault:?}");
        assert!(fault.at_double >= fault.at_nominal - 1e-9, "{fault:?}");
    }

    #[test]
    fn pcie_bandwidth_moves_the_metric_against_hetero() {
        let rows = sensitivity_study(Scale::TEST);
        let pcie = rows
            .iter()
            .find(|r| r.parameter == "PCIe bandwidth")
            .unwrap();
        // A faster link improves the *discrete* baseline, raising the
        // limited/copy ratio.
        assert!(pcie.at_double >= pcie.at_nominal - 1e-9, "{pcie:?}");
    }

    #[test]
    fn render_is_a_table() {
        let rows = sensitivity_study(Scale::TEST);
        let s = render(&rows);
        assert!(s.contains("tornado"));
        assert!(s.contains("swing"));
    }
}
