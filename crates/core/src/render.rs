//! Plain-text rendering of experiment results: aligned tables, horizontal
//! stacked bars (the closest terminal analogue of the paper's bar charts),
//! and CSV for machine consumption.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use heteropipe::render::TextTable;
///
/// let mut t = TextTable::new(&["bench", "time"]);
/// t.row(&["kmeans", "12.3ms"]);
/// let s = t.render();
/// assert!(s.contains("bench"));
/// assert!(s.contains("kmeans"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header's.
    pub fn row(&mut self, cells: &[&str]) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows
            .push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Appends a row of owned strings.
    pub fn row_owned(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns and a separator under the header.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", c, width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            write_row(&mut out, r);
        }
        out
    }

    /// Renders as CSV (comma-separated, quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let line = |cells: &[String]| cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",");
        out.push_str(&line(&self.header));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

/// Renders a horizontal stacked bar of `width` characters where each
/// `(label_char, fraction)` segment occupies its share. Fractions are
/// relative to `full_scale` (1.0 = full width).
///
/// # Examples
///
/// ```
/// use heteropipe::render::stacked_bar;
///
/// let bar = stacked_bar(&[('C', 0.5), ('G', 0.25)], 0.75, 8);
/// assert_eq!(bar.len(), 8);
/// assert!(bar.starts_with("CCCC"));
/// ```
pub fn stacked_bar(segments: &[(char, f64)], total: f64, width: usize) -> String {
    let mut out = String::with_capacity(width);
    let mut used = 0usize;
    for &(ch, frac) in segments {
        let cells = ((frac * width as f64).round() as usize).min(width - used.min(width));
        for _ in 0..cells {
            out.push(ch);
        }
        used += cells;
    }
    let total_cells = ((total * width as f64).round() as usize).min(width);
    while out.len() < total_cells {
        out.push('.');
    }
    while out.len() < width {
        out.push(' ');
    }
    out.truncate(width);
    out
}

/// Formats a ratio as a percentage with one decimal, e.g. `42.5%`.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a byte count with binary units.
pub fn bytes_human(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b}B")
    } else {
        format!("{v:.1}{}", UNITS[u])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["a", "long_header"]);
        t.row(&["xxxxxx", "1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxxxx"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn csv_escapes() {
        let mut t = TextTable::new(&["name", "note"]);
        t.row(&["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn bar_fills_and_pads() {
        let bar = stacked_bar(&[('C', 0.5), ('G', 0.5)], 1.0, 10);
        assert_eq!(bar, "CCCCCGGGGG");
        let short = stacked_bar(&[('C', 0.2)], 0.5, 10);
        assert_eq!(short.len(), 10);
        assert!(short.contains('.'));
        assert!(short.ends_with(' '));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.425), "42.5%");
        assert_eq!(bytes_human(512), "512B");
        assert_eq!(bytes_human(2048), "2.0KiB");
        assert_eq!(bytes_human(3 * 1024 * 1024), "3.0MiB");
    }
}
