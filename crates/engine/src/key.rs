//! Content-addressed run keys.
//!
//! A [`RunKey`] is a structural hash of *everything* a simulation's result
//! depends on: the full lowered pipeline IR (which subsumes benchmark name
//! and input scale, and distinguishes transformed — fused, migrated —
//! pipelines), every model constant of the [`SystemConfig`], the
//! [`Organization`], the misalignment flag, and a schema version. Two jobs
//! with equal keys are guaranteed to produce identical [`RunReport`]s
//! (the simulator is deterministic), so the key doubles as the cache
//! address.
//!
//! Bump [`SCHEMA_VERSION`] whenever the simulator's semantics change in a
//! way the inputs cannot see (new model term, changed constant baked into
//! code, report field added): that invalidates every cached result at once.
//!
//! [`RunReport`]: heteropipe::RunReport

use heteropipe::exec::JobSpec;
use heteropipe::{Organization, Platform, SystemConfig};
use heteropipe_mem::dram::DramConfig;
use heteropipe_mem::xbar::{InterconnectConfig, Topology};
use heteropipe_mem::{AccessKind, CacheConfig};
use heteropipe_workloads::{BufferInit, CopyDir, ExecKind, Pattern, Pipeline, Stage};

/// Version tag mixed into every key. Bump on any simulator-semantics or
/// report-schema change; all previously cached results then miss.
pub const SCHEMA_VERSION: u32 = 1;

/// A 128-bit content address for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RunKey(pub u128);

impl RunKey {
    /// The key as 32 lowercase hex digits (the on-disk file stem).
    pub fn hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses the form [`RunKey::hex`] produces. `None` unless `s` is
    /// exactly 32 hex digits (either case).
    pub fn from_hex(s: &str) -> Option<RunKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(RunKey)
    }
}

/// Computes the run key for `job`.
pub fn run_key(job: &JobSpec<'_>) -> RunKey {
    let mut h = KeyHasher::new();
    h.u32(SCHEMA_VERSION);
    hash_pipeline(&mut h, job.pipeline);
    hash_config(&mut h, job.config);
    hash_organization(&mut h, job.organization);
    h.bool(job.misalignment_sensitive);
    h.finish()
}

/// The canonical derivation for every *composite* (non-job) key in the
/// workspace: a sweep key, a workflow stage key, and a workflow key are
/// all `composite_key(kind, inputs, members)` — [`SCHEMA_VERSION`], a
/// kind tag, the length-prefixed canonical input tokens, then the member
/// keys, hashed in that order and nothing else. `sweep.rs` and
/// `heteropipe-flow` both call this, so they cannot drift on hashing or
/// field order.
pub fn composite_key(kind: &str, inputs: &[&str], members: &[RunKey]) -> RunKey {
    let mut h = KeyHasher::new();
    h.u32(SCHEMA_VERSION);
    h.str(kind);
    h.u64(inputs.len() as u64);
    for s in inputs {
        h.str(s);
    }
    h.u64(members.len() as u64);
    for &k in members {
        h.key(k);
    }
    h.finish()
}

/// Rendezvous (highest-random-weight) placement score for `key` on the
/// worker occupying slot `worker` of a static cluster. The owner of a key
/// is the worker with the highest score among the live set; because each
/// `(key, worker)` pair scores independently, removing a worker only moves
/// the keys that worker owned — every other placement is untouched, which
/// is what lets a coordinator rehash around a dead worker without
/// invalidating the survivors' caches. Scoring by slot index (not address)
/// keeps placement stable across restarts with ephemeral ports.
pub fn shard_score(key: RunKey, worker: u64) -> u128 {
    let mut h = KeyHasher::new();
    h.u32(SCHEMA_VERSION);
    h.str("shard");
    h.key(key);
    h.u64(worker);
    h.finish().0
}

/// Incremental structural hasher: two independent 64-bit FNV-1a streams
/// (distinct offset bases, one fed byte-reversed input) concatenated into a
/// u128, each finalized through a SplitMix64 avalanche. Not cryptographic —
/// it only has to make accidental collisions across a few thousand
/// experiment runs negligible.
pub struct KeyHasher {
    lo: u64,
    hi: u64,
}

const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl KeyHasher {
    /// A fresh hasher.
    pub fn new() -> Self {
        KeyHasher {
            lo: FNV_OFFSET,
            hi: FNV_OFFSET ^ 0x5bd1_e995_7b7d_159b,
        }
    }

    fn byte(&mut self, b: u8) {
        self.lo = (self.lo ^ b as u64).wrapping_mul(FNV_PRIME);
        self.hi = (self.hi ^ (b.reverse_bits()) as u64).wrapping_mul(FNV_PRIME);
    }

    /// Hashes raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    /// Hashes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.byte(v);
    }

    /// Hashes a `u32`.
    pub fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    /// Hashes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// Hashes an `f64` by exact bit pattern.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Hashes a `bool`.
    pub fn bool(&mut self, v: bool) {
        self.byte(v as u8);
    }

    /// Hashes a string, length-prefixed so concatenations can't collide.
    pub fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    /// Hashes a time value by its exact picosecond count.
    pub fn ps(&mut self, t: heteropipe_sim::Ps) {
        self.u64(t.as_picos());
    }

    /// Hashes another key, both 64-bit halves in low-then-high order —
    /// the one way member keys enter a composite key.
    pub fn key(&mut self, k: RunKey) {
        self.u64(k.0 as u64);
        self.u64((k.0 >> 64) as u64);
    }

    /// Finalizes into a key.
    pub fn finish(self) -> RunKey {
        let lo = splitmix(self.lo);
        let hi = splitmix(self.hi ^ self.lo.rotate_left(32));
        RunKey(((hi as u128) << 64) | lo as u128)
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

fn hash_pipeline(h: &mut KeyHasher, p: &Pipeline) {
    h.str(&p.name);
    h.u64(p.buffers.len() as u64);
    for b in &p.buffers {
        h.str(&b.name);
        h.u64(b.bytes);
        h.u32(b.elem_bytes);
        h.u8(match b.init {
            BufferInit::Host => 0,
            BufferInit::Gpu => 1,
        });
        h.bool(b.mirrored);
    }
    h.u64(p.stages.len() as u64);
    for s in &p.stages {
        match s {
            Stage::Copy(c) => {
                h.u8(0);
                h.u64(c.buf.0 as u64);
                h.u8(match c.dir {
                    CopyDir::H2D => 0,
                    CopyDir::D2H => 1,
                });
                match c.bytes {
                    None => h.u8(0),
                    Some(b) => {
                        h.u8(1);
                        h.u64(b);
                    }
                }
                h.bool(c.elidable);
            }
            Stage::Compute(c) => {
                h.u8(1);
                h.str(&c.name);
                h.u8(match c.exec {
                    ExecKind::Cpu => 0,
                    ExecKind::Gpu => 1,
                });
                h.u64(c.threads);
                h.u32(c.threads_per_cta);
                h.u64(c.scratch_per_cta);
                h.u64(c.instructions);
                h.u64(c.flops);
                h.u64(c.patterns.len() as u64);
                for pi in &c.patterns {
                    h.u64(pi.buf.0 as u64);
                    h.u8(match pi.kind {
                        AccessKind::Read => 0,
                        AccessKind::Write => 1,
                    });
                    hash_pattern(h, &pi.pattern);
                    h.bool(pi.follows_chunk);
                }
                h.bool(c.chunkable);
                h.bool(c.interleave_patterns);
            }
        }
    }
}

fn hash_pattern(h: &mut KeyHasher, p: &Pattern) {
    match *p {
        Pattern::Stream { passes } => {
            h.u8(0);
            h.u32(passes);
        }
        Pattern::Strided { stride } => {
            h.u8(1);
            h.u32(stride);
        }
        Pattern::Stencil { row_elems } => {
            h.u8(2);
            h.u32(row_elems);
        }
        Pattern::Gather { count, region } => {
            h.u8(3);
            h.u64(count);
            h.f64(region);
        }
        Pattern::SparseSweep { fraction } => {
            h.u8(4);
            h.f64(fraction);
        }
        Pattern::Point { count } => {
            h.u8(5);
            h.u64(count);
        }
        Pattern::Neighbors { degree } => {
            h.u8(6);
            h.f64(degree);
        }
    }
}

fn hash_cache(h: &mut KeyHasher, c: &CacheConfig) {
    h.u64(c.capacity_bytes());
    h.u32(c.ways());
}

fn hash_dram(h: &mut KeyHasher, d: &DramConfig) {
    h.u32(d.channels());
    h.f64(d.peak_bw());
    // No raw efficiency accessor exists; effective_bw = peak × efficiency
    // pins it down exactly.
    h.f64(d.effective_bw());
    h.ps(d.access_latency());
}

fn hash_interconnect(h: &mut KeyHasher, i: &InterconnectConfig) {
    match i.topology() {
        Topology::Switch { ports } => {
            h.u8(0);
            h.u32(ports);
        }
        Topology::DanceHall => h.u8(1),
        Topology::DirectLinks { links } => {
            h.u8(2);
            h.u32(links);
        }
    }
    h.f64(i.aggregate_bw());
    h.ps(i.hop_latency());
}

fn hash_config(h: &mut KeyHasher, c: &SystemConfig) {
    h.u8(match c.platform {
        Platform::DiscreteGpu => 0,
        Platform::Heterogeneous => 1,
    });

    h.u8(c.cpu.cores);
    h.f64(c.cpu.clock.freq_hz());
    h.f64(c.cpu.issue_width);
    h.f64(c.cpu.peak_flops_per_core);
    h.f64(c.cpu.mlp);
    h.f64(c.cpu.l2_hit_cycles);
    h.f64(c.cpu.remote_hit_cycles);
    h.f64(c.cpu.offchip_cycles);
    h.ps(c.cpu.kernel_launch);

    h.u8(c.gpu.sms);
    h.f64(c.gpu.clock.freq_hz());
    h.u32(c.gpu.max_ctas_per_sm);
    h.u32(c.gpu.max_warps_per_sm);
    h.u32(c.gpu.issue_lanes);
    h.u64(c.gpu.scratch_bytes_per_sm);
    h.u32(c.gpu.registers_per_sm);
    h.f64(c.gpu.peak_flops_per_sm);
    h.f64(c.gpu.offchip_latency_secs);
    h.f64(c.gpu.misses_in_flight_per_warp);
    h.u32(c.gpu.warps_to_saturate_issue);
    h.ps(c.gpu.page_fault_latency);

    h.u8(c.hierarchy.cpu_cores);
    hash_cache(h, &c.hierarchy.cpu_l1d);
    hash_cache(h, &c.hierarchy.cpu_l2);
    h.u8(c.hierarchy.gpu_sms);
    hash_cache(h, &c.hierarchy.gpu_l1);
    hash_cache(h, &c.hierarchy.gpu_l2);
    h.bool(c.hierarchy.coherent_probes);

    match &c.cpu_mem {
        None => h.u8(0),
        Some(d) => {
            h.u8(1);
            hash_dram(h, d);
        }
    }
    hash_dram(h, &c.gpu_mem);
    match &c.pcie {
        None => h.u8(0),
        Some(p) => {
            h.u8(1);
            h.f64(p.peak_bw());
            h.f64(p.effective_bw());
            h.ps(p.setup_latency());
        }
    }
    hash_interconnect(h, &c.interconnect);

    h.bool(c.aligned_allocator);
    h.f64(c.memcpy_rate);
    h.u32(c.spill_window);
}

fn hash_organization(h: &mut KeyHasher, o: Organization) {
    match o {
        Organization::Serial => h.u8(0),
        Organization::AsyncStreams { streams } => {
            h.u8(1);
            h.u32(streams);
        }
        Organization::ChunkedParallel { chunks } => {
            h.u8(2);
            h.u32(chunks);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_workloads::{registry, Scale};

    fn key_of(
        pipeline: &Pipeline,
        config: &SystemConfig,
        organization: Organization,
        mis: bool,
    ) -> RunKey {
        run_key(&JobSpec {
            pipeline,
            config,
            organization,
            misalignment_sensitive: mis,
        })
    }

    #[test]
    fn key_is_deterministic() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let c = SystemConfig::discrete();
        let a = key_of(&p, &c, Organization::Serial, false);
        let b = key_of(&p, &c, Organization::Serial, false);
        assert_eq!(a, b);
        assert_eq!(a.hex().len(), 32);
    }

    #[test]
    fn hex_round_trips_and_rejects_junk() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let c = SystemConfig::discrete();
        let key = key_of(&p, &c, Organization::Serial, false);
        assert_eq!(RunKey::from_hex(&key.hex()), Some(key));
        assert_eq!(RunKey::from_hex(&key.hex().to_uppercase()), Some(key));
        for bad in ["", "abc", &format!("{}0", key.hex()), &"g".repeat(32)] {
            assert_eq!(RunKey::from_hex(bad), None, "{bad:?} must not parse");
        }
        let zeros = "0".repeat(32);
        assert_eq!(RunKey::from_hex(&zeros), Some(RunKey(0)));
    }

    #[test]
    fn key_separates_every_input_dimension() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let discrete = SystemConfig::discrete();
        let base = key_of(&p, &discrete, Organization::Serial, false);

        // Scale changes the pipeline IR, hence the key.
        let p2 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::new(0.16))
            .unwrap();
        assert_ne!(base, key_of(&p2, &discrete, Organization::Serial, false));

        // A different benchmark.
        let srad = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        assert_ne!(base, key_of(&srad, &discrete, Organization::Serial, false));

        // Platform / config family.
        let hetero = SystemConfig::heterogeneous();
        assert_ne!(base, key_of(&p, &hetero, Organization::Serial, false));

        // Organization and its parameter.
        assert_ne!(
            base,
            key_of(
                &p,
                &discrete,
                Organization::AsyncStreams { streams: 3 },
                false
            )
        );
        assert_ne!(
            key_of(
                &p,
                &discrete,
                Organization::AsyncStreams { streams: 3 },
                false
            ),
            key_of(
                &p,
                &discrete,
                Organization::AsyncStreams { streams: 4 },
                false
            )
        );

        // Misalignment flag.
        assert_ne!(base, key_of(&p, &discrete, Organization::Serial, true));
    }

    #[test]
    fn composite_key_separates_kind_inputs_and_members() {
        let a = RunKey(1);
        let b = RunKey(2);
        let base = composite_key("stage", &["x=1"], &[a, b]);
        assert_eq!(base, composite_key("stage", &["x=1"], &[a, b]));

        // Every field participates: kind tag, each input token, member
        // set, and member order.
        assert_ne!(base, composite_key("sweep", &["x=1"], &[a, b]));
        assert_ne!(base, composite_key("stage", &["x=2"], &[a, b]));
        assert_ne!(base, composite_key("stage", &[], &[a, b]));
        assert_ne!(base, composite_key("stage", &["x=1"], &[a]));
        assert_ne!(base, composite_key("stage", &["x=1"], &[b, a]));

        // Length-prefixing: token boundaries cannot collide.
        assert_ne!(
            composite_key("s", &["ab", "c"], &[]),
            composite_key("s", &["a", "bc"], &[]),
        );
    }

    #[test]
    fn shard_scores_are_deterministic_and_spread() {
        let keys: Vec<RunKey> = (0..64u128)
            .map(|i| RunKey(i.wrapping_mul(0x9E37)))
            .collect();
        // Same inputs, same score.
        assert_eq!(shard_score(keys[0], 0), shard_score(keys[0], 0));
        assert_ne!(shard_score(keys[0], 0), shard_score(keys[0], 1));
        // Highest-score placement across 4 workers uses every slot.
        let owner = |k: RunKey, n: u64| (0..n).max_by_key(|&w| shard_score(k, w)).unwrap();
        let mut used = [false; 4];
        for &k in &keys {
            used[owner(k, 4) as usize] = true;
        }
        assert_eq!(used, [true; 4], "64 keys over 4 workers hit every slot");
        // Rendezvous property: dropping worker 3 only moves worker 3's keys.
        for &k in &keys {
            let before = owner(k, 4);
            if before != 3 {
                let after = (0..3).max_by_key(|&w| shard_score(k, w)).unwrap();
                assert_eq!(before, after, "surviving placements must not move");
            }
        }
    }

    #[test]
    fn key_tracks_each_model_constant() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let nominal = SystemConfig::discrete();
        let base = key_of(&p, &nominal, Organization::Serial, false);

        type Mutation = (&'static str, Box<dyn Fn(&mut SystemConfig)>);
        let mutations: Vec<Mutation> = vec![
            ("cpu.mlp", Box::new(|c| c.cpu.mlp *= 2.0)),
            (
                "cpu.kernel_launch",
                Box::new(|c| c.cpu.kernel_launch = c.cpu.kernel_launch * 2),
            ),
            (
                "gpu.page_fault_latency",
                Box::new(|c| c.gpu.page_fault_latency = c.gpu.page_fault_latency * 2),
            ),
            ("gpu.sms", Box::new(|c| c.gpu.sms *= 2)),
            (
                "gpu_mem.peak_bw",
                Box::new(|c| c.gpu_mem = c.gpu_mem.with_peak_bw(c.gpu_mem.peak_bw() * 2.0)),
            ),
            (
                "pcie.peak_bw",
                Box::new(|c| {
                    let p = c.pcie.expect("discrete has pcie");
                    c.pcie = Some(p.with_peak_bw(p.peak_bw() * 2.0));
                }),
            ),
            ("memcpy_rate", Box::new(|c| c.memcpy_rate *= 2.0)),
            ("spill_window", Box::new(|c| c.spill_window *= 2)),
            (
                "aligned_allocator",
                Box::new(|c| c.aligned_allocator = !c.aligned_allocator),
            ),
        ];
        for (name, mutate) in mutations {
            let mut c = nominal.clone();
            mutate(&mut c);
            assert_ne!(
                base,
                key_of(&p, &c, Organization::Serial, false),
                "mutating {name} must change the key"
            );
        }
    }
}
