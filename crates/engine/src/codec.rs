//! Versioned binary (de)serialization of [`RunReport`] for the on-disk
//! cache tier.
//!
//! Layout: a 4-byte magic, a `u32` format version, the report fields in
//! fixed order (little-endian integers, length-prefixed strings and
//! sequences), and a trailing FNV-1a checksum over everything before it.
//! Every field of [`RunReport`] is integral (`Ps` is a picosecond count,
//! there are no raw floats), so decoding reproduces the encoded report
//! *exactly* — rendered tables from cached results are byte-identical to
//! freshly computed ones.
//!
//! Decoding is total: any malformation — wrong magic, unknown version,
//! truncation, trailing garbage, checksum mismatch, invalid enum tag —
//! yields `None`, never a panic. The cache treats `None` as a miss.

use heteropipe::{
    ClassCounts, ComponentTimes, ExclusiveSlice, Organization, Platform, RunReport, TouchSet,
};
use heteropipe_sim::Ps;

/// File magic: "heteropipe run report".
pub const MAGIC: [u8; 4] = *b"HPRR";
/// Current format version. Bump alongside any layout change; old files
/// then decode to `None` and are recomputed.
pub const FORMAT_VERSION: u32 = 1;

/// Encodes `report` into the versioned cache format.
pub fn encode(report: &RunReport) -> Vec<u8> {
    let mut w = Writer::new();
    w.buf.extend_from_slice(&MAGIC);
    w.u32(FORMAT_VERSION);

    w.str(&report.benchmark);
    w.u8(match report.platform {
        Platform::DiscreteGpu => 0,
        Platform::Heterogeneous => 1,
    });
    match report.organization {
        Organization::Serial => {
            w.u8(0);
            w.u32(0);
        }
        Organization::AsyncStreams { streams } => {
            w.u8(1);
            w.u32(streams);
        }
        Organization::ChunkedParallel { chunks } => {
            w.u8(2);
            w.u32(chunks);
        }
    }
    w.ps(report.roi);
    w.ps(report.busy.copy);
    w.ps(report.busy.cpu);
    w.ps(report.busy.gpu);
    w.u32(report.exclusive.len() as u32);
    for s in &report.exclusive {
        w.str(&s.components);
        w.ps(s.time);
    }
    for a in report.accesses {
        w.u64(a);
    }
    w.u64(report.offchip_fetches);
    w.u64(report.offchip_writebacks);
    w.u64(report.offchip_bytes);
    for c in report.classes.counts() {
        w.u64(c);
    }
    w.u32(report.footprint.len() as u32);
    for (set, bytes) in &report.footprint {
        w.u8(set.bits());
        w.u64(*bytes);
    }
    w.u64(report.total_footprint);
    w.u64(report.faults);
    w.ps(report.c_serial);
    w.u64(report.cpu_flops);
    w.u64(report.gpu_flops);
    w.u64(report.remote_hits);
    w.u8(report.bw_limited as u8);

    let sum = fnv1a(&w.buf);
    w.u64(sum);
    w.buf
}

/// Cheaply validates an encoded report without decoding it: magic,
/// version, and the trailing FNV-1a checksum — one linear pass, no field
/// parsing and no allocation. The zero-copy warm path serves bytes that
/// pass this check directly; anything [`decode`] would reject for
/// structural reasons beyond these is caught by the checksum in practice
/// (and the full decode still guards the first, cold read).
pub fn validate(bytes: &[u8]) -> bool {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return false;
    }
    if bytes[..MAGIC.len()] != MAGIC {
        return false;
    }
    let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    if version != FORMAT_VERSION {
        return false;
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    fnv1a(body) == stored
}

/// Decodes a report, returning `None` on any malformation.
pub fn decode(bytes: &[u8]) -> Option<RunReport> {
    // Checksum covers everything before the trailing 8 bytes.
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return None;
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().ok()?);
    if fnv1a(body) != stored {
        return None;
    }

    let mut r = Reader { buf: body, pos: 0 };
    if r.take(MAGIC.len())? != MAGIC {
        return None;
    }
    if r.u32()? != FORMAT_VERSION {
        return None;
    }

    let benchmark = r.str()?;
    let platform = match r.u8()? {
        0 => Platform::DiscreteGpu,
        1 => Platform::Heterogeneous,
        _ => return None,
    };
    let org_tag = r.u8()?;
    let org_param = r.u32()?;
    let organization = match org_tag {
        0 => Organization::Serial,
        1 => Organization::AsyncStreams { streams: org_param },
        2 => Organization::ChunkedParallel { chunks: org_param },
        _ => return None,
    };
    let roi = r.ps()?;
    let busy = ComponentTimes {
        copy: r.ps()?,
        cpu: r.ps()?,
        gpu: r.ps()?,
    };
    let n_excl = r.u32()? as usize;
    let mut exclusive = Vec::with_capacity(n_excl.min(1024));
    for _ in 0..n_excl {
        exclusive.push(ExclusiveSlice {
            components: r.str()?,
            time: r.ps()?,
        });
    }
    let accesses = [r.u64()?, r.u64()?, r.u64()?];
    let offchip_fetches = r.u64()?;
    let offchip_writebacks = r.u64()?;
    let offchip_bytes = r.u64()?;
    let classes = ClassCounts::from_counts([r.u64()?, r.u64()?, r.u64()?, r.u64()?, r.u64()?]);
    let n_fp = r.u32()? as usize;
    let mut footprint = Vec::with_capacity(n_fp.min(1024));
    for _ in 0..n_fp {
        let bits = r.u8()?;
        let bytes = r.u64()?;
        footprint.push((TouchSet::from_bits(bits), bytes));
    }
    let total_footprint = r.u64()?;
    let faults = r.u64()?;
    let c_serial = r.ps()?;
    let cpu_flops = r.u64()?;
    let gpu_flops = r.u64()?;
    let remote_hits = r.u64()?;
    let bw_limited = match r.u8()? {
        0 => false,
        1 => true,
        _ => return None,
    };
    if r.pos != r.buf.len() {
        return None; // trailing garbage
    }

    Some(RunReport {
        benchmark,
        platform,
        organization,
        roi,
        busy,
        exclusive,
        accesses,
        offchip_fetches,
        offchip_writebacks,
        offchip_bytes,
        classes,
        footprint,
        total_footprint,
        faults,
        c_serial,
        cpu_flops,
        gpu_flops,
        remote_hits,
        bw_limited,
    })
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    fn new() -> Self {
        Writer { buf: Vec::new() }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn ps(&mut self, t: Ps) {
        self.u64(t.as_picos());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Some(out)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
    fn ps(&mut self) -> Option<Ps> {
        Some(Ps::from_picos(self.u64()?))
    }
    fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{DirectExecutor, Executor, JobSpec, Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};

    fn real_report() -> RunReport {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        DirectExecutor::new().execute(&JobSpec {
            pipeline: &p,
            config: &cfg,
            organization: Organization::ChunkedParallel { chunks: 4 },
            misalignment_sensitive: true,
        })
    }

    #[test]
    fn round_trips_a_real_report_exactly() {
        let report = real_report();
        let bytes = encode(&report);
        let back = decode(&bytes).expect("decodes");
        assert_eq!(back, report);
    }

    /// `validate` accepts exactly what `decode` accepts on well-formed
    /// encodes, and rejects the same magic/version/checksum malformations.
    #[test]
    fn validate_agrees_with_decode() {
        let bytes = encode(&real_report());
        assert!(validate(&bytes));

        assert!(!validate(&[]));
        assert!(!validate(&bytes[..bytes.len() - 1]), "truncated");
        assert!(!validate(&bytes[1..]), "missing magic byte");

        let mut flipped = bytes.clone();
        flipped[10] ^= 0xFF;
        assert!(!validate(&flipped), "checksum catches a bit flip");

        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE;
        let body_len = wrong_version.len() - 8;
        let sum = fnv1a(&wrong_version[..body_len]).to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&sum);
        assert!(!validate(&wrong_version), "unknown version");

        heteropipe_sim::check::cases(128, 0x7A11_DA7E, |g| {
            let n = g.usize(0, 256);
            let noise = g.bytes(n);
            if validate(&noise) {
                // Anything validate accepts, decode must accept too
                // (modulo structural damage the checksum missed, which the
                // generator cannot produce from noise).
                assert!(decode(&noise).is_some());
            }
        });
    }

    #[test]
    fn rejects_malformed_inputs() {
        let bytes = encode(&real_report());

        assert_eq!(decode(&[]), None);
        assert_eq!(decode(&bytes[..bytes.len() - 1]), None, "truncated");
        assert_eq!(decode(&bytes[1..]), None, "missing magic byte");

        let mut flipped = bytes.clone();
        flipped[10] ^= 0xFF;
        assert_eq!(decode(&flipped), None, "checksum catches a bit flip");

        let mut extended = bytes.clone();
        extended.push(0);
        assert_eq!(decode(&extended), None, "trailing garbage");

        // An unknown version with a *valid* checksum must still be rejected.
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 0xEE; // version little-endian low byte
        let body_len = wrong_version.len() - 8;
        let sum = fnv1a(&wrong_version[..body_len]).to_le_bytes();
        wrong_version[body_len..].copy_from_slice(&sum);
        assert_eq!(decode(&wrong_version), None, "unknown version");
    }

    /// Property (docs/robustness.md): `decode` is total. Whatever a torn
    /// write, bit rot, or an attacker leaves in a cache file, decoding
    /// either reproduces a report or returns `None` — it must never panic
    /// (the cache quarantines the file and the engine re-executes).
    #[test]
    fn decode_never_panics_on_truncated_or_flipped_records() {
        let bytes = encode(&real_report());
        heteropipe_sim::check::cases(256, 0xB0B0_FA17, |g| {
            let mut mutant = bytes.clone();
            match g.u32(0, 3) {
                // Truncate anywhere, including to empty.
                0 => mutant.truncate(g.usize(0, mutant.len() + 1)),
                // Flip 1..8 random bits.
                1 => {
                    for _ in 0..g.u32(1, 9) {
                        let i = g.usize(0, mutant.len());
                        mutant[i] ^= 1 << g.u32(0, 8);
                    }
                }
                // Replace a random span with random bytes (length fields,
                // enum tags, and the checksum all get hit eventually).
                _ => {
                    let at = g.usize(0, mutant.len());
                    let span = g.usize(1, 33).min(mutant.len() - at);
                    let noise = g.bytes(span);
                    mutant[at..at + span].copy_from_slice(&noise);
                }
            }
            // Any outcome but a panic is acceptable: the FNV checksum
            // makes surviving mutants astronomically unlikely, but decode
            // only promises totality, not rejection.
            let _ = decode(&mutant);
        });

        // Pure noise of assorted sizes, as a separate generator family.
        heteropipe_sim::check::cases(128, 0x5EED, |g| {
            let n = g.usize(0, 512);
            let noise = g.bytes(n);
            let _ = decode(&noise);
        });
    }

    #[test]
    fn organization_variants_survive() {
        let mut report = real_report();
        for org in [
            Organization::Serial,
            Organization::AsyncStreams { streams: 7 },
            Organization::ChunkedParallel { chunks: 16 },
        ] {
            report.organization = org;
            assert_eq!(decode(&encode(&report)).unwrap().organization, org);
        }
    }
}
