//! Batched sweep execution: key-level dedup, bounded fan-out, per-batch
//! accounting.
//!
//! The paper's figures are built from *sweeps* — the same benchmark set
//! re-run across `{copy, limited-copy}` versions and system configs — so
//! consecutive batches share most of their run keys. The sweep pipeline
//! exploits that before any worker is scheduled:
//!
//! 1. **plan**: every entry's [`RunKey`] is computed up front; entries
//!    repeating an earlier entry's key become *duplicates* of that leader
//!    and never occupy a worker slot;
//! 2. **execute**: the unique residue fans out over
//!    [`heteropipe::exec::par_map`]'s bounded work-queue. Each unique
//!    entry still passes through the engine's cache and single-flight
//!    layers, so identical jobs racing in from *other* batches coalesce
//!    onto one execution too;
//! 3. **report**: each entry resolves independently — a poisoned job
//!    fails its own entry (and its duplicates), never the batch — and a
//!    completion record is pushed to an observer sink the moment it
//!    lands, which is how `POST /v1/sweeps` streams NDJSON.
//!
//! The sweep itself is content-addressed ([`sweep_key`]) and leaves a
//! summary trace in the engine's trace store under that key.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::time::Instant;

use heteropipe::exec::par_map;
use heteropipe::{JobSpec, RunReport};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{JobTrace, PhaseTimer};

use crate::error::EngineError;
use crate::key::{composite_key, run_key, RunKey};
use crate::{Disposition, Engine};

/// The content address of a whole sweep: an order-sensitive hash over its
/// member run keys, derived through the workspace's one canonical
/// composite-key helper ([`composite_key`]). The sweep's summary trace is
/// stored under this key, so `GET /v1/runs/{sweep_key}/trace` retrieves
/// it like any job trace.
pub fn sweep_key(keys: &[RunKey]) -> RunKey {
    composite_key("sweep", &[], keys)
}

/// One completed sweep entry, pushed to the observer sink the moment it
/// resolves (completion order, not submission order).
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// The entry's index in the submitted batch.
    pub index: usize,
    /// The entry's run key as 32 lowercase hex digits.
    pub key_hex: String,
    /// True when this entry repeated an earlier entry's key and shares
    /// that leader's result instead of occupying a worker slot.
    pub deduped: bool,
    /// The entry's outcome. Failures are per-entry: one poisoned job
    /// fails itself and its duplicates, never the batch.
    pub result: Result<RunReport, EngineError>,
}

/// Aggregate accounting for one sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Entries submitted.
    pub jobs_total: u64,
    /// Distinct run keys among them.
    pub jobs_unique: u64,
    /// Entries folded onto an earlier entry with the same key
    /// (`jobs_total - jobs_unique`).
    pub duplicates: u64,
    /// Unique entries served by the result cache (either tier).
    pub cache_hits: u64,
    /// Unique entries simulated fresh.
    pub executed: u64,
    /// Unique entries that coalesced onto a concurrent identical
    /// execution from outside this sweep (single-flight).
    pub coalesced: u64,
    /// Entries that failed, duplicates included.
    pub failed: u64,
    /// Wall time for the whole sweep, nanoseconds.
    pub wall_ns: u64,
    /// Sum of per-entry wall times: what running the deduplicated residue
    /// one job at a time would have cost.
    pub serial_estimate_ns: u64,
}

impl SweepSummary {
    /// Speedup of the bounded fan-out over the serial estimate (1.0 for
    /// an empty sweep).
    pub fn speedup_vs_serial(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.serial_estimate_ns as f64 / self.wall_ns as f64
        }
    }
}

/// What [`Engine::execute_sweep`] returns: per-entry results in
/// submission order plus the sweep's aggregate accounting.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The sweep's content address ([`sweep_key`]) as hex; its summary
    /// trace lives under this key in the engine's trace store.
    pub key_hex: String,
    /// Per-entry outcomes, index-aligned with the submitted batch.
    pub results: Vec<Result<RunReport, EngineError>>,
    /// Aggregate accounting.
    pub summary: SweepSummary,
}

impl Engine {
    /// Executes a batch through the sweep pipeline: run keys computed up
    /// front, in-batch duplicates deduplicated onto one leader each, the
    /// unique residue fanned out over the bounded work-queue, and every
    /// entry resolved independently.
    pub fn execute_sweep(&self, jobs: &[JobSpec<'_>]) -> SweepOutcome {
        self.execute_sweep_observed(jobs, None, &|_| {})
    }

    /// [`Engine::execute_sweep`] with a request correlation id stamped on
    /// traces and logs, and an observer `sink` invoked once per entry the
    /// moment it completes (completion order; a duplicate's record
    /// follows its leader's immediately). The sink is called from worker
    /// threads, so it must serialize its own side effects.
    pub fn execute_sweep_observed(
        &self,
        jobs: &[JobSpec<'_>],
        request_id: Option<&str>,
        sink: &(dyn Fn(&SweepRecord) + Sync),
    ) -> SweepOutcome {
        let start = Instant::now();
        let mut timer = PhaseTimer::new();
        let keys: Vec<RunKey> = jobs.iter().map(run_key).collect();
        let sweep = sweep_key(&keys);

        // Plan: the first entry carrying each key leads; later twins
        // follow it and reuse its result.
        let (leaders, followers) = timer.time("plan", || {
            let mut first: HashMap<u128, usize> = HashMap::new();
            let mut leaders: Vec<usize> = Vec::new();
            let mut followers: HashMap<usize, Vec<usize>> = HashMap::new();
            for (i, k) in keys.iter().enumerate() {
                match first.entry(k.0) {
                    Entry::Vacant(v) => {
                        v.insert(i);
                        leaders.push(i);
                    }
                    Entry::Occupied(o) => followers.entry(*o.get()).or_default().push(i),
                }
            }
            (leaders, followers)
        });
        let duplicates = (jobs.len() - leaders.len()) as u64;
        self.metrics.record_sweep(jobs.len() as u64, duplicates);

        let emit = |index: usize, deduped: bool, result: &Result<RunReport, EngineError>| {
            sink(&SweepRecord {
                index,
                key_hex: keys[index].hex(),
                deduped,
                result: result.clone(),
            });
        };
        // Queue wait is measured from fan-out to worker pickup, as in any
        // batch; it becomes the `queue` phase of each entry's trace.
        let submit = Instant::now();
        let outputs = timer.time("execute", || {
            par_map(&leaders, self.jobs, |&i| {
                let queue_ns = submit.elapsed().as_nanos() as u64;
                let t0 = Instant::now();
                let disposed = self.try_execute_disposed(&jobs[i], request_id, queue_ns);
                let wall_ns = t0.elapsed().as_nanos() as u64;
                let disposition = disposed.as_ref().ok().map(|(_, d)| *d);
                let result = disposed.map(|(report, _)| report);
                emit(i, false, &result);
                for &d in followers.get(&i).into_iter().flatten() {
                    emit(d, true, &result);
                }
                (result, disposition, wall_ns)
            })
        });

        let mut results: Vec<Option<Result<RunReport, EngineError>>> = vec![None; jobs.len()];
        let mut summary = SweepSummary {
            jobs_total: jobs.len() as u64,
            jobs_unique: leaders.len() as u64,
            duplicates,
            ..SweepSummary::default()
        };
        for (&i, out) in leaders.iter().zip(outputs) {
            let (result, disposition, wall_ns) = match out {
                Ok(x) => x,
                // par_map catches worker panics, but try_execute_disposed
                // already contains its own; reaching here means an
                // invariant broke, so fail the entry rather than the batch
                // (its records were never emitted to the sink).
                Err(e) => (
                    Err(EngineError::JobPanicked {
                        key_hex: keys[i].hex(),
                        message: e.message,
                        attempts: 1,
                    }),
                    None,
                    0,
                ),
            };
            summary.serial_estimate_ns += wall_ns;
            match disposition {
                Some(d) if d.is_cache_hit() => summary.cache_hits += 1,
                Some(Disposition::Executed) => summary.executed += 1,
                Some(Disposition::Coalesced) => summary.coalesced += 1,
                _ => {}
            }
            let dups = followers.get(&i).map_or(&[][..], Vec::as_slice);
            if let Err(e) = &result {
                let fanout = 1 + dups.len() as u64;
                summary.failed += fanout;
                for _ in 0..fanout {
                    self.metrics.record_failure();
                }
                obs_log::error(
                    "engine",
                    "sweep entry failed",
                    &[
                        ("request_id", request_id.unwrap_or("-").into()),
                        ("sweep_key", sweep.hex().into()),
                        ("job_index", (i as u64).into()),
                        ("duplicates", (dups.len() as u64).into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
            for &d in dups {
                results[d] = Some(result.clone());
            }
            results[i] = Some(result);
        }
        summary.wall_ns = start.elapsed().as_nanos() as u64;

        self.traces.insert(JobTrace {
            key_hex: sweep.hex(),
            benchmark: format!("sweep[{}]", jobs.len()),
            request_id: request_id.map(str::to_owned),
            outcome: "sweep".to_owned(),
            phases: timer.finish(),
            sim_events: Vec::new(),
        });
        obs_log::info(
            "engine",
            "sweep executed",
            &[
                ("request_id", request_id.unwrap_or("-").into()),
                ("sweep_key", sweep.hex().into()),
                ("jobs", summary.jobs_total.into()),
                ("unique", summary.jobs_unique.into()),
                ("cache_hits", summary.cache_hits.into()),
                ("executed", summary.executed.into()),
                ("coalesced", summary.coalesced.into()),
                ("failed", summary.failed.into()),
                ("wall_ms", (summary.wall_ns / 1_000_000).into()),
            ],
        );

        SweepOutcome {
            key_hex: sweep.hex(),
            results: results
                .into_iter()
                .map(|r| r.expect("every sweep index resolves exactly once"))
                .collect(),
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};
    use std::sync::Mutex;

    fn spec<'a>(
        pipeline: &'a heteropipe_workloads::Pipeline,
        config: &'a SystemConfig,
    ) -> JobSpec<'a> {
        JobSpec {
            pipeline,
            config,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        }
    }

    #[test]
    fn sweep_key_is_order_sensitive_and_length_prefixed() {
        let a = RunKey(1);
        let b = RunKey(2);
        assert_eq!(sweep_key(&[a, b]), sweep_key(&[a, b]));
        assert_ne!(sweep_key(&[a, b]), sweep_key(&[b, a]));
        assert_ne!(sweep_key(&[a]), sweep_key(&[a, a]));
        assert_ne!(sweep_key(&[]), sweep_key(&[a]));
        // A sweep's key must not collide with its sole member's key.
        assert_ne!(sweep_key(&[a]), a);
    }

    #[test]
    fn n_copies_of_one_spec_execute_exactly_once() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = vec![spec(&p, &cfg); 8];

        // No cache: only the sweep's own dedup can collapse the copies.
        let engine = Engine::new().without_cache();
        let outcome = engine.execute_sweep(&jobs);
        let reports: Vec<_> = outcome
            .results
            .iter()
            .map(|r| r.as_ref().unwrap())
            .collect();
        assert!(reports.windows(2).all(|w| w[0] == w[1]), "all identical");
        assert_eq!(outcome.summary.jobs_total, 8);
        assert_eq!(outcome.summary.jobs_unique, 1);
        assert_eq!(outcome.summary.duplicates, 7);
        assert_eq!(outcome.summary.executed, 1);
        assert_eq!(outcome.summary.cache_hits, 0);
        assert_eq!(outcome.summary.failed, 0);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 1, "exactly one execution for 8 copies");
        assert_eq!(m.sweeps, 1);
        assert_eq!(m.sweep_jobs, 8);
        assert_eq!(m.sweep_deduped, 7);
    }

    #[test]
    fn sink_sees_every_entry_with_duplicates_after_their_leader() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [spec(&p1, &cfg), spec(&p1, &cfg), spec(&p2, &cfg)];

        let engine = Engine::new().memory_cache_only().with_jobs(1);
        let seen = Mutex::new(Vec::new());
        let outcome = engine.execute_sweep_observed(&jobs, Some("req-sweep"), &|rec| {
            assert!(rec.result.is_ok());
            seen.lock()
                .unwrap()
                .push((rec.index, rec.deduped, rec.key_hex.clone()));
        });
        let seen = seen.into_inner().unwrap();
        // jobs=1 makes completion order deterministic: leader 0, its
        // duplicate 1, then leader 2.
        assert_eq!(
            seen.iter().map(|(i, d, _)| (*i, *d)).collect::<Vec<_>>(),
            [(0, false), (1, true), (2, false)]
        );
        assert_eq!(seen[0].2, seen[1].2, "duplicate carries its leader's key");
        assert_ne!(seen[0].2, seen[2].2);

        // The sweep left a summary trace under its own key.
        let t = engine.traces().get(&outcome.key_hex).expect("sweep traced");
        assert_eq!(t.outcome, "sweep");
        assert_eq!(t.benchmark, "sweep[3]");
        assert_eq!(t.request_id.as_deref(), Some("req-sweep"));
        let phases: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(phases, ["plan", "execute"]);
    }

    #[test]
    fn warm_sweep_repeats_byte_identically_and_counts_hits() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [spec(&p1, &cfg), spec(&p2, &cfg), spec(&p1, &cfg)];

        let engine = Engine::new().memory_cache_only();
        let cold = engine.execute_sweep(&jobs);
        assert_eq!(cold.summary.executed, 2);
        let warm = engine.execute_sweep(&jobs);
        assert_eq!(warm.key_hex, cold.key_hex, "same members, same sweep key");
        assert_eq!(warm.results, cold.results);
        assert_eq!(warm.summary.cache_hits, 2);
        assert_eq!(warm.summary.executed, 0);
        assert_eq!(engine.metrics().jobs_executed, 2);
    }

    #[test]
    fn empty_sweep_is_a_noop() {
        let engine = Engine::new().memory_cache_only();
        let outcome = engine.execute_sweep(&[]);
        assert!(outcome.results.is_empty());
        assert_eq!(outcome.summary.jobs_total, 0);
        assert_eq!(outcome.summary.jobs_unique, 0);
        assert_eq!(outcome.summary.failed, 0);
        assert_eq!(SweepSummary::default().speedup_vs_serial(), 1.0);
        assert_eq!(engine.metrics().jobs_executed, 0);
    }
}
