//! # heteropipe-engine
//!
//! The experiment-execution subsystem every harness driver routes through.
//! An [`Engine`] implements [`heteropipe::Executor`] and layers three
//! things over the plain simulator:
//!
//! * a **content-addressed result cache** ([`cache::ResultCache`]): each
//!   job is addressed by a structural hash of its complete run key
//!   ([`key::run_key`]) — pipeline IR, every model constant, organization,
//!   misalignment flag, schema version — so re-running an experiment, or a
//!   sweep that shares its baseline with another study, reuses results
//!   instead of re-simulating. A disk tier under `results/cache/` makes
//!   reuse survive across invocations;
//! * a **job scheduler**: batches fan out over
//!   [`heteropipe::exec::par_map`]'s bounded work-queue with per-job
//!   failure capture and deterministic, submission-ordered results;
//! * **run metrics** ([`metrics::RunMetrics`]): jobs executed, cache hits
//!   by tier, simulated time, and wall time, summarized on stderr and
//!   exportable as CSV.
//!
//! Because the simulator is deterministic and [`heteropipe::RunReport`]
//! is float-free, a cached result is bit-for-bit the result a fresh run
//! would produce: rendered tables are byte-identical hot, cold, or with
//! caching disabled.

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod key;
pub mod metrics;

use std::path::PathBuf;
use std::time::Instant;

use heteropipe::exec::{par_map, JobError};
use heteropipe::{Executor, JobSpec, RunReport};

pub use cache::{CacheTier, ResultCache};
pub use key::{run_key, RunKey, SCHEMA_VERSION};
pub use metrics::{MetricsSnapshot, RunMetrics};

/// The default on-disk cache location, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// The caching executor. Construct with [`Engine::new`] and customize with
/// the builder methods, then hand it to the `*_with` experiment drivers as
/// a `&dyn Executor`.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Option<ResultCache>,
    metrics: RunMetrics,
}

impl Engine {
    /// An engine with full parallelism and the default disk-backed cache
    /// under [`DEFAULT_CACHE_DIR`].
    pub fn new() -> Self {
        Engine {
            jobs: heteropipe::exec::default_parallelism(),
            cache: Some(ResultCache::on_disk(DEFAULT_CACHE_DIR)),
            metrics: RunMetrics::new(),
        }
    }

    /// Caps batch parallelism at `jobs` concurrent simulations (min 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Persists the cache under `dir` instead of the default.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(ResultCache::on_disk(dir));
        self
    }

    /// Keeps the cache in memory only (no files written).
    pub fn memory_cache_only(mut self) -> Self {
        self.cache = Some(ResultCache::in_memory());
        self
    }

    /// Disables caching entirely: every job simulates (`--no-cache`).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// The configured batch parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache, if enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// A snapshot of this engine's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Prints the metrics summary footer to stderr (stdout stays reserved
    /// for the rendered tables, which must not differ hot vs cold).
    pub fn print_summary(&self) {
        eprintln!("{}", self.metrics().summary());
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

// The server in `heteropipe-serve` shares one engine across worker
// threads behind an `Arc`; these assertions keep that contract explicit.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<RunMetrics>();
};

impl Executor for Engine {
    fn execute(&self, job: &JobSpec<'_>) -> RunReport {
        let Some(cache) = &self.cache else {
            let start = Instant::now();
            let report = heteropipe::run::run(
                job.pipeline,
                job.config,
                job.organization,
                job.misalignment_sensitive,
            );
            self.metrics
                .record_executed(report.roi.as_picos(), start.elapsed().as_nanos() as u64);
            return report;
        };

        let key = run_key(job);
        if let Some((report, tier)) = cache.get(key) {
            match tier {
                CacheTier::Memory => self.metrics.record_memory_hit(),
                CacheTier::Disk => self.metrics.record_disk_hit(),
            }
            return report;
        }
        self.metrics.record_miss();
        let start = Instant::now();
        let report = heteropipe::run::run(
            job.pipeline,
            job.config,
            job.organization,
            job.misalignment_sensitive,
        );
        self.metrics
            .record_executed(report.roi.as_picos(), start.elapsed().as_nanos() as u64);
        cache.put(key, &report);
        report
    }

    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<RunReport, JobError>> {
        let out = par_map(jobs, self.jobs, |j| self.execute(j));
        for r in &out {
            if r.is_err() {
                self.metrics.record_failure();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "heteropipe-engine-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn kmeans_spec<'a>(
        pipeline: &'a heteropipe_workloads::Pipeline,
        config: &'a SystemConfig,
    ) -> JobSpec<'a> {
        JobSpec {
            pipeline,
            config,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        }
    }

    #[test]
    fn warm_run_hits_and_matches_cold() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().memory_cache_only().with_jobs(2);
        let cold = engine.execute(&spec);
        let warm = engine.execute(&spec);
        assert_eq!(cold, warm);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 1);
        assert_eq!(m.memory_hits, 1);
        assert_eq!(m.misses, 1);
        assert!(m.simulated_ps > 0);
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let dir = temp_dir("restart");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        assert_eq!(first.metrics().jobs_executed, 1);

        let second = Engine::new().with_cache_dir(&dir);
        let warm = second.execute(&spec);
        assert_eq!(warm, cold);
        let m = second.metrics();
        assert_eq!(m.jobs_executed, 0, "restarted engine must not re-simulate");
        assert_eq!(m.disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_cache_file_is_recomputed() {
        let dir = temp_dir("corrupt");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        let path = first.cache().unwrap().path_for(run_key(&spec)).unwrap();
        std::fs::write(&path, b"\0\0garbage\0\0").unwrap();

        let second = Engine::new().with_cache_dir(&dir);
        let recomputed = second.execute(&spec);
        assert_eq!(recomputed, cold);
        let m = second.metrics();
        assert_eq!(m.disk_hits, 0, "garbage must not decode");
        assert_eq!(m.jobs_executed, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_engine_always_executes() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().without_cache();
        let a = engine.execute(&spec);
        let b = engine.execute(&spec);
        assert_eq!(a, b, "simulator must be deterministic");
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2);
        assert_eq!(m.hits(), 0);
    }

    #[test]
    fn concurrent_executions_share_cache_without_corruption() {
        // Eight threads hammer one disk-backed engine with the same two
        // jobs: every result must be the deterministic report, and every
        // cache file written under the race must decode cleanly.
        use heteropipe::DirectExecutor;
        let dir = temp_dir("concurrent");
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let expected = [
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p1, &cfg)),
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p2, &cfg)),
        ];

        let engine = std::sync::Arc::new(Engine::new().with_cache_dir(&dir));
        std::thread::scope(|s| {
            for t in 0..8 {
                let engine = std::sync::Arc::clone(&engine);
                let (p1, p2, cfg, expected) = (&p1, &p2, &cfg, &expected);
                s.spawn(move || {
                    for round in 0..3 {
                        let p = if (t + round) % 2 == 0 { p1 } else { p2 };
                        let got = engine.execute(&kmeans_spec(p, cfg));
                        let want = &expected[usize::from(got.benchmark == expected[1].benchmark)];
                        assert_eq!(&got, want, "thread {t} round {round}");
                    }
                });
            }
        });

        let m = engine.metrics();
        assert_eq!(m.jobs_total(), 24);
        assert!(
            m.jobs_executed >= 2,
            "both distinct jobs simulated at least once"
        );
        assert!(m.hits() > 0, "racing threads must reuse results");

        // Every .hpr the race left behind must be a decodable report.
        let mut files = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "hpr") {
                files += 1;
                let bytes = std::fs::read(&path).unwrap();
                let report = codec::decode(&bytes)
                    .unwrap_or_else(|| panic!("{} is corrupt", path.display()));
                assert!(expected.contains(&report));
            }
        }
        assert_eq!(files, 2, "one intact cache file per distinct job");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_matches_direct_executor() {
        use heteropipe::DirectExecutor;
        let p = registry::find("pannotia/pr")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);
        let via_engine = Engine::new().memory_cache_only().execute(&spec);
        let direct = DirectExecutor::new().execute(&spec);
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn batches_hit_the_cache_and_keep_order() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [
            kmeans_spec(&p1, &cfg),
            kmeans_spec(&p2, &cfg),
            kmeans_spec(&p1, &cfg),
        ];

        // jobs=1 keeps the batch sequential so the duplicated job
        // deterministically hits the entry its twin just wrote.
        let engine = Engine::new().memory_cache_only().with_jobs(1);
        let first: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first[0].benchmark, first[2].benchmark);
        assert_eq!(first[0], first[2]);
        assert_ne!(first[0].benchmark, first[1].benchmark);

        let again: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first, again);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2, "three distinct keys, one duplicated");
        assert!(m.hits() >= 4);
    }
}
