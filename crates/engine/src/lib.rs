//! # heteropipe-engine
//!
//! The experiment-execution subsystem every harness driver routes through.
//! An [`Engine`] implements [`heteropipe::Executor`] and layers three
//! things over the plain simulator:
//!
//! * a **content-addressed result cache** ([`cache::ResultCache`]): each
//!   job is addressed by a structural hash of its complete run key
//!   ([`key::run_key`]) — pipeline IR, every model constant, organization,
//!   misalignment flag, schema version — so re-running an experiment, or a
//!   sweep that shares its baseline with another study, reuses results
//!   instead of re-simulating. A disk tier under `results/cache/` makes
//!   reuse survive across invocations;
//! * a **job scheduler**: batches fan out over
//!   [`heteropipe::exec::par_map`]'s bounded work-queue with per-job
//!   failure capture and deterministic, submission-ordered results;
//! * a **batch sweep pipeline** ([`Engine::execute_sweep`]): run keys are
//!   computed up front, entries sharing a key are deduplicated onto one
//!   execution, and concurrent identical jobs — within or across batches —
//!   **single-flight** onto one leader (a condvar-gated slot per in-flight
//!   key, in front of the cache), with per-sweep accounting
//!   ([`SweepSummary`]) and streaming per-entry completion records;
//! * **run metrics** ([`metrics::RunMetrics`]): jobs executed, cache hits
//!   by tier, simulated time, and wall time, summarized on stderr and
//!   exportable as CSV;
//! * **job-lifecycle tracing** (via `heteropipe-obs`): every job records
//!   its wall-clock phases — queue wait, cache probe, execute, persist —
//!   into a bounded [`heteropipe_obs::TraceStore`], merged with the run's
//!   simulated component timeline, retrievable as Chrome-trace JSON and
//!   correlated to the originating HTTP request by id
//!   ([`Engine::execute_observed`]);
//! * a **resilience layer** (see `docs/robustness.md`): per-attempt panic
//!   isolation with retry under capped jittered backoff, a poisoned-job
//!   quarantine for jobs that exhaust their budget
//!   ([`Engine::try_execute`] surfaces [`EngineError`]), an observational
//!   per-job watchdog, and deterministic fault seams
//!   ([`Engine::with_faults`]) threaded through the cache I/O and job
//!   execution paths for chaos testing.
//!
//! Because the simulator is deterministic and [`heteropipe::RunReport`]
//! is float-free, a cached result is bit-for-bit the result a fresh run
//! would produce: rendered tables are byte-identical hot, cold, or with
//! caching disabled.

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod error;
pub mod journal;
pub mod key;
pub mod metrics;
pub mod sweep;

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use heteropipe::exec::{panic_message, JobError};
use heteropipe::trace::TaskSpan;
use heteropipe::{Executor, JobSpec, RunReport};
use heteropipe_faults::{with_retries, FaultKind, Injector, RetryPolicy, Site};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{JobTrace, PhaseTimer, TraceStore};

/// Hot-path profiler phase slots, registered once per process and cached
/// behind `OnceLock`s so the execute path pays only the profiler's atomic
/// adds. These are additive instrumentation: the per-job [`PhaseTimer`]
/// phases (and the trace phase lists tests pin) are untouched.
pub(crate) mod prof {
    use heteropipe_obs::profile::{self, PhaseId};
    use std::sync::OnceLock;

    macro_rules! phase_slot {
        ($fn_name:ident, $phase:literal) => {
            pub(crate) fn $fn_name() -> PhaseId {
                static P: OnceLock<PhaseId> = OnceLock::new();
                *P.get_or_init(|| profile::phase($phase))
            }
        };
    }

    phase_slot!(cache_probe, "engine.cache_probe");
    phase_slot!(decode, "engine.cache_decode");
    phase_slot!(validate, "engine.cache_validate");
    phase_slot!(execute, "engine.execute");
    phase_slot!(persist, "engine.persist");
    phase_slot!(splice, "engine.trace_splice");
}

pub use cache::{CacheTier, ResultCache};
pub use error::EngineError;
pub use journal::{Journal, JournalStatsSnapshot, Replay, DEFAULT_JOURNAL_DIR};
pub use key::{composite_key, run_key, shard_score, RunKey, SCHEMA_VERSION};
pub use metrics::{MetricsSnapshot, RunMetrics};
pub use sweep::{sweep_key, SweepOutcome, SweepRecord, SweepSummary};

/// The default on-disk cache location, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Default number of job traces retained by the engine's trace store.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// The caching executor. Construct with [`Engine::new`] and customize with
/// the builder methods, then hand it to the `*_with` experiment drivers as
/// a `&dyn Executor`.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Option<ResultCache>,
    metrics: RunMetrics,
    traces: TraceStore,
    faults: Arc<Injector>,
    retry: RetryPolicy,
    watchdog: Option<Duration>,
    poisoned: Mutex<HashSet<u128>>,
    inflight: Mutex<HashMap<u128, Arc<Flight>>>,
}

/// A single-flight slot: the first request for a key becomes the leader
/// and executes; concurrent requests for the same key block on the condvar
/// and share the leader's published result (success or failure) instead of
/// re-simulating.
#[derive(Debug)]
struct Flight {
    slot: Mutex<Option<Result<RunReport, EngineError>>>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            slot: Mutex::new(None),
            done: Condvar::new(),
        }
    }

    fn publish(&self, result: Result<RunReport, EngineError>) {
        *self.slot.lock().unwrap() = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<RunReport, EngineError> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            match &*slot {
                Some(result) => return result.clone(),
                None => slot = self.done.wait(slot).unwrap(),
            }
        }
    }
}

/// How a job's report was obtained; feeds the trace outcome label and the
/// per-sweep accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disposition {
    MemoryHit,
    DiskHit,
    Executed,
    Coalesced,
}

impl Disposition {
    pub(crate) fn is_cache_hit(self) -> bool {
        matches!(self, Disposition::MemoryHit | Disposition::DiskHit)
    }

    fn label(self) -> &'static str {
        match self {
            Disposition::MemoryHit => "memory_hit",
            Disposition::DiskHit => "disk_hit",
            Disposition::Executed => "executed",
            Disposition::Coalesced => "coalesced",
        }
    }
}

impl Engine {
    /// An engine with full parallelism and the default disk-backed cache
    /// under [`DEFAULT_CACHE_DIR`].
    pub fn new() -> Self {
        Engine {
            jobs: heteropipe::exec::default_parallelism(),
            cache: Some(ResultCache::on_disk(DEFAULT_CACHE_DIR)),
            metrics: RunMetrics::new(),
            traces: TraceStore::new(DEFAULT_TRACE_CAPACITY),
            faults: Arc::new(Injector::disabled()),
            retry: RetryPolicy::DEFAULT,
            watchdog: None,
            poisoned: Mutex::new(HashSet::new()),
            inflight: Mutex::new(HashMap::new()),
        }
    }

    /// Caps batch parallelism at `jobs` concurrent simulations (min 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Persists the cache under `dir` instead of the default.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        let cache = self.configured_cache(ResultCache::on_disk(dir));
        self.cache = Some(cache);
        self
    }

    /// Keeps the cache in memory only (no files written).
    pub fn memory_cache_only(mut self) -> Self {
        let cache = self.configured_cache(ResultCache::in_memory());
        self.cache = Some(cache);
        self
    }

    /// Threads `faults` through every injection seam the engine owns: the
    /// cache read/write paths and the job-execution path. The production
    /// default is [`Injector::disabled`], which costs one branch per seam.
    pub fn with_faults(mut self, faults: Arc<Injector>) -> Self {
        if let Some(cache) = &mut self.cache {
            cache.set_faults(Arc::clone(&faults));
        }
        self.faults = faults;
        self
    }

    /// Overrides the retry policy shared by job execution and cache
    /// persistence (default [`RetryPolicy::DEFAULT`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        if let Some(cache) = &mut self.cache {
            cache.set_retry(retry);
        }
        self.retry = retry;
        self
    }

    /// Arms a per-attempt watchdog: an execution attempt that outlives
    /// `deadline` is counted and logged the moment the deadline passes.
    /// The watchdog is observational — std threads cannot be cancelled, so
    /// the attempt is then awaited to completion rather than abandoned.
    pub fn with_watchdog(mut self, deadline: Duration) -> Self {
        self.watchdog = Some(deadline);
        self
    }

    /// Applies this engine's fault injector and retry policy to a freshly
    /// built cache, so builder-call order never matters.
    fn configured_cache(&self, mut cache: ResultCache) -> ResultCache {
        cache.set_faults(Arc::clone(&self.faults));
        cache.set_retry(self.retry);
        cache
    }

    /// Disables caching entirely: every job simulates (`--no-cache`).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Retains up to `cap` job traces instead of
    /// [`DEFAULT_TRACE_CAPACITY`] (clamped to ≥ 1).
    pub fn with_trace_capacity(mut self, cap: usize) -> Self {
        self.traces = TraceStore::new(cap);
        self
    }

    /// The configured batch parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache, if enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// The fault injector threaded through this engine's seams (the
    /// disabled injector unless [`Engine::with_faults`] was called).
    pub fn faults(&self) -> &Injector {
        &self.faults
    }

    /// A snapshot of this engine's counters, with the cache's resilience
    /// counters merged in.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        if let Some(cache) = &self.cache {
            snapshot.cache = cache.stats();
        }
        snapshot
    }

    /// The bounded store of recent job traces, keyed by run-key hex.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Executes a job like [`Executor::execute`], stamping `request_id`
    /// (the HTTP correlation id, when the job came in over the wire) onto
    /// the job's trace and log lines.
    ///
    /// # Panics
    ///
    /// Panics if the job fails on every retry attempt (see
    /// [`Engine::try_execute_observed`] for the fallible variant).
    pub fn execute_observed(&self, job: &JobSpec<'_>, request_id: Option<&str>) -> RunReport {
        self.try_execute_inner(job, request_id, 0)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Executes a job, surfacing resilience failures as [`EngineError`]
    /// instead of panicking: a job that panicked on every retry attempt,
    /// or one already quarantined by an earlier exhausted run.
    pub fn try_execute(&self, job: &JobSpec<'_>) -> Result<RunReport, EngineError> {
        self.try_execute_inner(job, None, 0)
    }

    /// [`Engine::try_execute`] with a request correlation id stamped onto
    /// the job's trace and log lines.
    pub fn try_execute_observed(
        &self,
        job: &JobSpec<'_>,
        request_id: Option<&str>,
    ) -> Result<RunReport, EngineError> {
        self.try_execute_inner(job, request_id, 0)
    }

    /// The shared execution path: refuses quarantined jobs, joins the
    /// key's single-flight slot (concurrent identical jobs coalesce onto
    /// one leader), probes the cache, simulates on a miss (retrying
    /// panicked attempts under backoff), persists the result, and records
    /// a [`JobTrace`] of the lifecycle. `queue_ns` is time already spent
    /// waiting in the batch queue.
    fn try_execute_inner(
        &self,
        job: &JobSpec<'_>,
        request_id: Option<&str>,
        queue_ns: u64,
    ) -> Result<RunReport, EngineError> {
        self.try_execute_disposed(job, request_id, queue_ns)
            .map(|(report, _)| report)
    }

    /// [`Engine::try_execute_inner`] plus how the report was obtained,
    /// for per-sweep accounting.
    pub(crate) fn try_execute_disposed(
        &self,
        job: &JobSpec<'_>,
        request_id: Option<&str>,
        queue_ns: u64,
    ) -> Result<(RunReport, Disposition), EngineError> {
        let timer = PhaseTimer::with_queue(queue_ns);
        let key = run_key(job);

        if self.poisoned.lock().unwrap().contains(&key.0) {
            obs_log::warn(
                "engine",
                "quarantined job refused",
                &[
                    ("request_id", request_id.unwrap_or("-").into()),
                    ("run_key", key.hex().into()),
                ],
            );
            return Err(EngineError::Quarantined { key_hex: key.hex() });
        }

        let (flight, leader) = self.join_flight(key);
        if !leader {
            let mut timer = timer;
            self.metrics.record_flight_coalesced();
            let report = timer.time("flight_wait", || flight.wait())?;
            self.store_trace(key, &report, request_id, "coalesced", timer, Vec::new());
            self.log_job(
                obs_log::Level::Debug,
                "coalesced onto in-flight execution",
                key,
                &report,
                request_id,
                "coalesced",
            );
            return Ok((report, Disposition::Coalesced));
        }

        // The leader must publish whatever happens, or waiters would hang:
        // a panic escaping the execution path (the paths below contain
        // their own, so this is belt-and-braces) becomes a shared error.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.leader_execute(job, key, request_id, timer)
        }))
        .unwrap_or_else(|payload| {
            Err(EngineError::JobPanicked {
                key_hex: key.hex(),
                message: panic_message(payload),
                attempts: 1,
            })
        });
        self.inflight.lock().unwrap().remove(&key.0);
        flight.publish(
            result
                .as_ref()
                .map(|(r, _)| r.clone())
                .map_err(Clone::clone),
        );
        result
    }

    /// Joins the single-flight slot for `key`. The first caller becomes
    /// the leader (`true`) and owes a publish + removal; later callers
    /// wait on the returned flight.
    fn join_flight(&self, key: RunKey) -> (Arc<Flight>, bool) {
        use std::collections::hash_map::Entry;
        let mut map = self.inflight.lock().unwrap();
        match map.entry(key.0) {
            Entry::Occupied(e) => (Arc::clone(e.get()), false),
            Entry::Vacant(v) => {
                let flight = Arc::new(Flight::new());
                v.insert(Arc::clone(&flight));
                (flight, true)
            }
        }
    }

    /// The leader's side of a single flight: probe the cache, simulate on
    /// a miss, persist, trace.
    fn leader_execute(
        &self,
        job: &JobSpec<'_>,
        key: RunKey,
        request_id: Option<&str>,
        mut timer: PhaseTimer,
    ) -> Result<(RunReport, Disposition), EngineError> {
        if let Some(cache) = &self.cache {
            let probe = timer.time("cache_probe", || {
                heteropipe_obs::profile::time(prof::cache_probe(), || cache.get(key))
            });
            if let Some((report, tier)) = probe {
                let disposition = match tier {
                    CacheTier::Memory => {
                        self.metrics.record_memory_hit();
                        Disposition::MemoryHit
                    }
                    CacheTier::Disk => {
                        self.metrics.record_disk_hit();
                        Disposition::DiskHit
                    }
                };
                self.store_trace(
                    key,
                    &report,
                    request_id,
                    disposition.label(),
                    timer,
                    Vec::new(),
                );
                self.log_job(
                    obs_log::Level::Debug,
                    "cache hit",
                    key,
                    &report,
                    request_id,
                    disposition.label(),
                );
                return Ok((report, disposition));
            }
            self.metrics.record_miss();
        }

        let start = Instant::now();
        let jitter_seed = (key.0 as u64) ^ ((key.0 >> 64) as u64);
        let outcome = timer.time("execute", || {
            heteropipe_obs::profile::time(prof::execute(), || {
                with_retries(
                    &self.retry,
                    jitter_seed,
                    |_| self.run_attempt(job),
                    |attempt, message: &String, sleep_ms| {
                        self.metrics.record_exec_retry();
                        obs_log::warn(
                            "engine",
                            "job attempt panicked, retrying",
                            &[
                                ("run_key", key.hex().into()),
                                ("attempt", u64::from(attempt).into()),
                                ("backoff_ms", sleep_ms.into()),
                                ("panic", message.clone().into()),
                            ],
                        );
                    },
                )
            })
        });
        let (report, spans) = match outcome {
            Ok(ok) => ok,
            Err(message) => {
                let attempts = self.retry.attempts.max(1);
                self.poisoned.lock().unwrap().insert(key.0);
                self.metrics.record_job_quarantined();
                obs_log::error(
                    "engine",
                    "job quarantined after exhausting retries",
                    &[
                        ("request_id", request_id.unwrap_or("-").into()),
                        ("run_key", key.hex().into()),
                        ("attempts", u64::from(attempts).into()),
                        ("panic", message.clone().into()),
                    ],
                );
                return Err(EngineError::JobPanicked {
                    key_hex: key.hex(),
                    message,
                    attempts,
                });
            }
        };
        self.metrics
            .record_executed(report.roi.as_picos(), start.elapsed().as_nanos() as u64);
        if let Some(cache) = &self.cache {
            timer.time("persist", || {
                heteropipe_obs::profile::time(prof::persist(), || cache.put(key, &report));
            });
        }
        let sim_events = heteropipe::trace::span_events(&report.benchmark, &spans);
        self.store_trace(key, &report, request_id, "executed", timer, sim_events);
        self.log_job(
            obs_log::Level::Info,
            "job executed",
            key,
            &report,
            request_id,
            "executed",
        );
        Ok((report, Disposition::Executed))
    }

    /// Looks up a cached report by key without executing anything,
    /// bumping the engine's hit counters, or consulting the quarantine —
    /// the read-only lookup behind `GET /v1/runs/{key}`. `None` when the
    /// key was never run, has been evicted, or caching is disabled.
    pub fn cached(&self, key: RunKey) -> Option<RunReport> {
        self.cache
            .as_ref()
            .and_then(|cache| cache.get(key))
            .map(|(report, _)| report)
    }

    /// The zero-copy variant of [`Engine::cached`]: the encoded `.hpr`
    /// record for `key`, validated (magic/version/checksum) but not
    /// decoded, shared as an `Arc`. Warm repeats cost a map lookup and a
    /// pointer clone — no decode, no allocation, no byte copy — which is
    /// what `GET /v1/runs/{key}` and the cluster peer-cache probe serve.
    pub fn cached_bytes(&self, key: RunKey) -> Option<Arc<Vec<u8>>> {
        self.cache
            .as_ref()
            .and_then(|cache| cache.get_bytes(key))
            .map(|(bytes, _)| bytes)
    }

    /// One execution attempt: rolls the `job.exec` fault seam, isolates
    /// the job's panic (injected or real) with `catch_unwind`, and — when
    /// a watchdog deadline is armed — times the attempt from a scoped
    /// worker thread. `Err` carries the rendered panic message.
    ///
    /// The watchdog is observational by design: std threads cannot be
    /// cancelled, so an overrun is counted and logged the moment the
    /// deadline passes and the attempt is then awaited to completion.
    /// Injected hangs are bounded sleeps, so chaos runs still terminate.
    fn run_attempt(&self, job: &JobSpec<'_>) -> Result<(RunReport, Vec<TaskSpan>), String> {
        let attempt = || {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if let Some(fault) = self.faults.roll(Site::JobExec) {
                    match fault.kind {
                        FaultKind::Hang => std::thread::sleep(Duration::from_millis(fault.hang_ms)),
                        _ => panic!("injected: {}", fault.kind.label()),
                    }
                }
                heteropipe::run::run_traced(
                    job.pipeline,
                    job.config,
                    job.organization,
                    job.misalignment_sensitive,
                )
            }))
            .map_err(panic_message)
        };
        let Some(deadline) = self.watchdog else {
            return attempt();
        };
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::channel();
            scope.spawn(move || {
                let _ = tx.send(attempt());
            });
            match rx.recv_timeout(deadline) {
                Ok(result) => result,
                Err(_) => {
                    self.metrics.record_watchdog_fired();
                    obs_log::warn(
                        "engine",
                        "watchdog deadline exceeded, awaiting attempt",
                        &[
                            ("run_key", run_key(job).hex().into()),
                            ("deadline_ms", (deadline.as_millis() as u64).into()),
                        ],
                    );
                    rx.recv().expect("attempt thread sends exactly once")
                }
            }
        })
    }

    fn store_trace(
        &self,
        key: RunKey,
        report: &RunReport,
        request_id: Option<&str>,
        outcome: &str,
        timer: PhaseTimer,
        sim_events: Vec<String>,
    ) {
        heteropipe_obs::profile::time(prof::splice(), || {
            self.traces.insert(JobTrace {
                key_hex: key.hex(),
                benchmark: report.benchmark.clone(),
                request_id: request_id.map(str::to_owned),
                outcome: outcome.to_owned(),
                phases: timer.finish(),
                sim_events,
            });
        });
    }

    fn log_job(
        &self,
        level: obs_log::Level,
        msg: &str,
        key: RunKey,
        report: &RunReport,
        request_id: Option<&str>,
        outcome: &str,
    ) {
        obs_log::log(
            level,
            "engine",
            msg,
            &[
                ("request_id", request_id.unwrap_or("-").into()),
                ("run_key", key.hex().into()),
                ("benchmark", report.benchmark.as_str().into()),
                ("outcome", outcome.into()),
                ("simulated_ps", report.roi.as_picos().into()),
            ],
        );
    }

    /// Prints the metrics summary footer to stderr (stdout stays reserved
    /// for the rendered tables, which must not differ hot vs cold).
    pub fn print_summary(&self) {
        eprintln!("{}", self.metrics().summary());
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

// The server in `heteropipe-serve` shares one engine across worker
// threads behind an `Arc`; these assertions keep that contract explicit.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<RunMetrics>();
    assert_send_sync::<TraceStore>();
};

impl Executor for Engine {
    /// Executes one job. The `Executor` contract is infallible, so an
    /// [`EngineError`] (retries exhausted, job quarantined) is re-raised
    /// as a panic carrying the error's message; batch execution and the
    /// HTTP layer both catch panics per job.
    fn execute(&self, job: &JobSpec<'_>) -> RunReport {
        self.try_execute_inner(job, None, 0)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Batches route through the sweep pipeline ([`Engine::execute_sweep`]):
    /// entries sharing a run key dedup onto one execution, the unique
    /// residue fans out over the bounded work-queue, and each entry's
    /// failure stays its own ([`JobError`] wraps the [`EngineError`]).
    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<RunReport, JobError>> {
        self.execute_sweep(jobs)
            .results
            .into_iter()
            .enumerate()
            .map(|(index, result)| {
                result.map_err(|e| JobError {
                    index,
                    message: e.to_string(),
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "heteropipe-engine-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn kmeans_spec<'a>(
        pipeline: &'a heteropipe_workloads::Pipeline,
        config: &'a SystemConfig,
    ) -> JobSpec<'a> {
        JobSpec {
            pipeline,
            config,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        }
    }

    #[test]
    fn warm_run_hits_and_matches_cold() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().memory_cache_only().with_jobs(2);
        let cold = engine.execute(&spec);
        let warm = engine.execute(&spec);
        assert_eq!(cold, warm);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 1);
        assert_eq!(m.memory_hits, 1);
        assert_eq!(m.misses, 1);
        assert!(m.simulated_ps > 0);
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let dir = temp_dir("restart");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        assert_eq!(first.metrics().jobs_executed, 1);

        let second = Engine::new().with_cache_dir(&dir);
        let warm = second.execute(&spec);
        assert_eq!(warm, cold);
        let m = second.metrics();
        assert_eq!(m.jobs_executed, 0, "restarted engine must not re-simulate");
        assert_eq!(m.disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_cache_file_is_recomputed() {
        let dir = temp_dir("corrupt");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        let path = first.cache().unwrap().path_for(run_key(&spec)).unwrap();
        std::fs::write(&path, b"\0\0garbage\0\0").unwrap();

        let second = Engine::new().with_cache_dir(&dir);
        let recomputed = second.execute(&spec);
        assert_eq!(recomputed, cold);
        let m = second.metrics();
        assert_eq!(m.disk_hits, 0, "garbage must not decode");
        assert_eq!(m.jobs_executed, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_engine_always_executes() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().without_cache();
        let a = engine.execute(&spec);
        let b = engine.execute(&spec);
        assert_eq!(a, b, "simulator must be deterministic");
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2);
        assert_eq!(m.hits(), 0);
    }

    #[test]
    fn concurrent_executions_share_cache_without_corruption() {
        // Eight threads hammer one disk-backed engine with the same two
        // jobs: every result must be the deterministic report, and every
        // cache file written under the race must decode cleanly.
        use heteropipe::DirectExecutor;
        let dir = temp_dir("concurrent");
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let expected = [
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p1, &cfg)),
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p2, &cfg)),
        ];

        let engine = std::sync::Arc::new(Engine::new().with_cache_dir(&dir));
        std::thread::scope(|s| {
            for t in 0..8 {
                let engine = std::sync::Arc::clone(&engine);
                let (p1, p2, cfg, expected) = (&p1, &p2, &cfg, &expected);
                s.spawn(move || {
                    for round in 0..3 {
                        let p = if (t + round) % 2 == 0 { p1 } else { p2 };
                        let got = engine.execute(&kmeans_spec(p, cfg));
                        let want = &expected[usize::from(got.benchmark == expected[1].benchmark)];
                        assert_eq!(&got, want, "thread {t} round {round}");
                    }
                });
            }
        });

        let m = engine.metrics();
        assert_eq!(m.jobs_total(), 24);
        assert!(
            m.jobs_executed >= 2,
            "both distinct jobs simulated at least once"
        );
        assert!(m.hits() > 0, "racing threads must reuse results");

        // Every .hpr the race left behind must be a decodable report.
        let mut files = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "hpr") {
                files += 1;
                let bytes = std::fs::read(&path).unwrap();
                let report = codec::decode(&bytes)
                    .unwrap_or_else(|| panic!("{} is corrupt", path.display()));
                assert!(expected.contains(&report));
            }
        }
        assert_eq!(files, 2, "one intact cache file per distinct job");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traces_record_lifecycle_and_survive_cache_hits() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().memory_cache_only().with_trace_capacity(8);
        let cold = engine.execute_observed(&spec, Some("req-cold"));
        let key_hex = run_key(&spec).hex();

        let t = engine.traces().get(&key_hex).expect("cold run traced");
        assert_eq!(t.outcome, "executed");
        assert_eq!(t.request_id.as_deref(), Some("req-cold"));
        assert_eq!(t.benchmark, cold.benchmark);
        let names: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["cache_probe", "execute", "persist"]);
        assert!(
            !t.sim_events.is_empty(),
            "executed run carries sim timeline"
        );

        let warm = engine.execute_observed(&spec, Some("req-warm"));
        assert_eq!(warm, cold);
        let t = engine.traces().get(&key_hex).unwrap();
        assert_eq!(t.outcome, "memory_hit");
        assert_eq!(t.request_id.as_deref(), Some("req-warm"));
        assert!(
            !t.sim_events.is_empty(),
            "warm hit inherits the simulated timeline"
        );
        let json = engine.traces().render(&key_hex).unwrap();
        assert!(json.contains("\"request_id\":\"req-warm\""));
        assert!(json.contains("\"pid\":1"), "sim events present");
        assert!(json.contains(&format!("\"run_key\":\"{key_hex}\"")));
    }

    #[test]
    fn uncached_engine_still_traces() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);
        let engine = Engine::new().without_cache();
        engine.execute(&spec);
        let t = engine.traces().get(&run_key(&spec).hex()).unwrap();
        assert!(t.request_id.is_none());
        let names: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["execute"], "no cache phases without a cache");
    }

    #[test]
    fn batch_jobs_record_queue_phase() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [kmeans_spec(&p, &cfg)];
        let engine = Engine::new().memory_cache_only();
        engine.execute_batch(&jobs).pop().unwrap().unwrap();
        let t = engine.traces().get(&run_key(&jobs[0]).hex()).unwrap();
        assert_eq!(
            t.phases.first().map(|p| p.name.as_str()),
            Some("queue"),
            "batch jobs start with their queue wait"
        );
    }

    #[test]
    fn engine_matches_direct_executor() {
        use heteropipe::DirectExecutor;
        let p = registry::find("pannotia/pr")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);
        let via_engine = Engine::new().memory_cache_only().execute(&spec);
        let direct = DirectExecutor::new().execute(&spec);
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn batches_hit_the_cache_and_keep_order() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [
            kmeans_spec(&p1, &cfg),
            kmeans_spec(&p2, &cfg),
            kmeans_spec(&p1, &cfg),
        ];

        // The duplicated entry dedups onto its twin inside the batch, so
        // it costs neither an execution nor a cache probe.
        let engine = Engine::new().memory_cache_only().with_jobs(1);
        let first: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first[0].benchmark, first[2].benchmark);
        assert_eq!(first[0], first[2]);
        assert_ne!(first[0].benchmark, first[1].benchmark);

        let again: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first, again);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2, "two distinct keys, one duplicated");
        assert_eq!(m.hits(), 2, "warm repeat probes once per unique key");
        assert_eq!(m.sweeps, 2);
        assert_eq!(m.sweep_jobs, 6);
        assert_eq!(m.sweep_deduped, 2);
    }

    #[test]
    fn single_flight_coalesces_concurrent_identical_jobs() {
        // Six threads release simultaneously on one key. A hang fault
        // keeps the leader busy long enough that the rest arrive while it
        // is in flight: exactly one execution, everyone gets its result.
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new()
            .memory_cache_only()
            .with_faults(injector("job.exec:err=hang:ms=100:max=1"));
        let barrier = std::sync::Barrier::new(6);
        let reports: Vec<RunReport> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..6)
                .map(|_| {
                    s.spawn(|| {
                        barrier.wait();
                        engine.try_execute(&spec).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(reports.windows(2).all(|w| w[0] == w[1]));
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 1, "one leader simulates");
        assert_eq!(
            m.flights_coalesced + m.memory_hits,
            5,
            "everyone else coalesces onto the flight or hits the warm cache"
        );
        assert!(m.flights_coalesced >= 1, "at least one waiter coalesced");
    }

    #[test]
    fn sweep_isolates_poisoned_entries_without_failing_the_batch() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        // jobs=1 executes leaders in submission order, so the one-shot
        // fault deterministically poisons the kmeans entry.
        let jobs = [
            kmeans_spec(&p1, &cfg),
            kmeans_spec(&p1, &cfg),
            kmeans_spec(&p2, &cfg),
        ];
        let engine = Engine::new()
            .memory_cache_only()
            .with_jobs(1)
            .with_faults(injector("job.exec:err=panic:max=1"))
            .with_retry(heteropipe_faults::RetryPolicy {
                attempts: 1,
                base_ms: 0,
                cap_ms: 0,
            });
        let outcome = engine.execute_sweep(&jobs);
        assert!(
            matches!(&outcome.results[0], Err(EngineError::JobPanicked { .. })),
            "poisoned leader fails its entry"
        );
        assert_eq!(
            outcome.results[0], outcome.results[1],
            "its duplicate shares the same error"
        );
        assert!(outcome.results[2].is_ok(), "healthy entry unaffected");
        assert_eq!(outcome.summary.failed, 2);
        assert_eq!(outcome.summary.executed, 1);
        let m = engine.metrics();
        assert_eq!(m.failures, 2);
        assert_eq!(m.jobs_quarantined, 1);
        assert_eq!(m.jobs_executed, 1);

        // The quarantine holds on the next sweep: the poisoned entry
        // fast-fails while the rest of the batch still answers.
        let again = engine.execute_sweep(&jobs);
        assert!(matches!(
            &again.results[0],
            Err(EngineError::Quarantined { .. })
        ));
        assert!(again.results[2].is_ok());
    }

    fn injector(plan: &str) -> Arc<heteropipe_faults::Injector> {
        Arc::new(heteropipe_faults::Injector::new(
            heteropipe_faults::FaultPlan::parse(plan).unwrap(),
        ))
    }

    const FAST_RETRY: heteropipe_faults::RetryPolicy = heteropipe_faults::RetryPolicy {
        attempts: 5,
        base_ms: 0,
        cap_ms: 0,
    };

    #[test]
    fn injected_panics_are_retried_to_success() {
        use heteropipe::DirectExecutor;
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);
        let expected = DirectExecutor::new().execute(&spec);

        let engine = Engine::new()
            .memory_cache_only()
            .with_faults(injector("job.exec:err=panic:max=2"))
            .with_retry(FAST_RETRY);
        let got = engine
            .try_execute(&spec)
            .expect("retries must absorb both panics");
        assert_eq!(got, expected, "recovered result is byte-identical");
        let m = engine.metrics();
        assert_eq!(m.exec_retries, 2);
        assert_eq!(m.jobs_quarantined, 0);
        assert_eq!(m.jobs_executed, 1);
    }

    #[test]
    fn exhausted_retries_quarantine_the_job() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new()
            .memory_cache_only()
            .with_faults(injector("job.exec:err=panic"))
            .with_retry(heteropipe_faults::RetryPolicy {
                attempts: 2,
                base_ms: 0,
                cap_ms: 0,
            });
        let err = engine.try_execute(&spec).unwrap_err();
        match &err {
            EngineError::JobPanicked {
                message, attempts, ..
            } => {
                assert!(message.contains("injected"), "{message}");
                assert_eq!(*attempts, 2);
            }
            other => panic!("expected JobPanicked, got {other}"),
        }

        // Later attempts fast-fail without burning more retries.
        let again = engine.try_execute(&spec).unwrap_err();
        assert!(matches!(again, EngineError::Quarantined { .. }));
        let m = engine.metrics();
        assert_eq!(m.exec_retries, 1);
        assert_eq!(m.jobs_quarantined, 1);
        assert_eq!(m.jobs_executed, 0);

        // The batch path captures the quarantine as a per-job error.
        let out = engine.execute_batch(&[kmeans_spec(&p, &cfg)]);
        let e = out[0].as_ref().unwrap_err();
        assert!(e.message.contains("quarantined"), "{e}");
        assert_eq!(engine.metrics().failures, 1);
    }

    #[test]
    fn watchdog_observes_hung_attempts_without_losing_the_result() {
        use heteropipe::DirectExecutor;
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);
        let expected = DirectExecutor::new().execute(&spec);

        let engine = Engine::new()
            .memory_cache_only()
            .with_faults(injector("job.exec:err=hang:ms=40:max=1"))
            .with_watchdog(Duration::from_millis(5));
        let got = engine
            .try_execute(&spec)
            .expect("hang is a stall, not a failure");
        assert_eq!(got, expected);
        let m = engine.metrics();
        assert_eq!(m.watchdog_fired, 1, "overrun observed");
        assert_eq!(m.jobs_quarantined, 0);

        // Fault budget spent: the warm path runs without tripping it.
        engine.try_execute(&spec).unwrap();
        assert_eq!(engine.metrics().watchdog_fired, 1);
    }

    #[test]
    fn corrupt_cache_record_is_quarantined_then_transparently_reexecuted() {
        let dir = temp_dir("self-heal");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let cold = Engine::new().with_cache_dir(&dir).execute(&spec);

        // A fresh engine reads the record through an injected bit-flip:
        // the corrupt bytes are quarantined, the job transparently
        // re-executes, and the rewritten record serves the next reader.
        let healing = Engine::new()
            .with_cache_dir(&dir)
            .with_faults(injector("cache.read:err=corrupt:max=1"));
        let healed = healing.execute(&spec);
        assert_eq!(healed, cold, "re-execution reproduces the exact report");
        let m = healing.metrics();
        assert_eq!(m.jobs_executed, 1, "corrupt read became a miss");
        assert_eq!(m.cache.records_quarantined, 1);
        assert!(
            dir.join(cache::QUARANTINE_DIR).read_dir().unwrap().count() > 0,
            "evidence preserved under .quarantine/"
        );

        let fresh = Engine::new().with_cache_dir(&dir);
        assert_eq!(fresh.execute(&spec), cold);
        assert_eq!(
            fresh.metrics().disk_hits,
            1,
            "healed record serves from disk"
        );

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_order_does_not_matter_for_cache_faults() {
        let dir = temp_dir("builder-order");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        // Faults first, cache dir second: the rebuilt cache must inherit
        // the injector (one enospc absorbed by the persist retry loop).
        let engine = Engine::new()
            .with_faults(injector("cache.write:err=enospc:max=1"))
            .with_retry(FAST_RETRY)
            .with_cache_dir(&dir);
        engine.execute(&spec);
        assert_eq!(
            engine.metrics().cache.persist_retries,
            1,
            "injector survived the with_cache_dir rebuild"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
