//! # heteropipe-engine
//!
//! The experiment-execution subsystem every harness driver routes through.
//! An [`Engine`] implements [`heteropipe::Executor`] and layers three
//! things over the plain simulator:
//!
//! * a **content-addressed result cache** ([`cache::ResultCache`]): each
//!   job is addressed by a structural hash of its complete run key
//!   ([`key::run_key`]) — pipeline IR, every model constant, organization,
//!   misalignment flag, schema version — so re-running an experiment, or a
//!   sweep that shares its baseline with another study, reuses results
//!   instead of re-simulating. A disk tier under `results/cache/` makes
//!   reuse survive across invocations;
//! * a **job scheduler**: batches fan out over
//!   [`heteropipe::exec::par_map`]'s bounded work-queue with per-job
//!   failure capture and deterministic, submission-ordered results;
//! * **run metrics** ([`metrics::RunMetrics`]): jobs executed, cache hits
//!   by tier, simulated time, and wall time, summarized on stderr and
//!   exportable as CSV;
//! * **job-lifecycle tracing** (via `heteropipe-obs`): every job records
//!   its wall-clock phases — queue wait, cache probe, execute, persist —
//!   into a bounded [`heteropipe_obs::TraceStore`], merged with the run's
//!   simulated component timeline, retrievable as Chrome-trace JSON and
//!   correlated to the originating HTTP request by id
//!   ([`Engine::execute_observed`]).
//!
//! Because the simulator is deterministic and [`heteropipe::RunReport`]
//! is float-free, a cached result is bit-for-bit the result a fresh run
//! would produce: rendered tables are byte-identical hot, cold, or with
//! caching disabled.

#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod key;
pub mod metrics;

use std::path::PathBuf;
use std::time::Instant;

use heteropipe::exec::{par_map, JobError};
use heteropipe::{Executor, JobSpec, RunReport};
use heteropipe_obs::log as obs_log;
use heteropipe_obs::{JobTrace, PhaseTimer, TraceStore};

pub use cache::{CacheTier, ResultCache};
pub use key::{run_key, RunKey, SCHEMA_VERSION};
pub use metrics::{MetricsSnapshot, RunMetrics};

/// The default on-disk cache location, relative to the working directory.
pub const DEFAULT_CACHE_DIR: &str = "results/cache";

/// Default number of job traces retained by the engine's trace store.
pub const DEFAULT_TRACE_CAPACITY: usize = 256;

/// The caching executor. Construct with [`Engine::new`] and customize with
/// the builder methods, then hand it to the `*_with` experiment drivers as
/// a `&dyn Executor`.
#[derive(Debug)]
pub struct Engine {
    jobs: usize,
    cache: Option<ResultCache>,
    metrics: RunMetrics,
    traces: TraceStore,
}

impl Engine {
    /// An engine with full parallelism and the default disk-backed cache
    /// under [`DEFAULT_CACHE_DIR`].
    pub fn new() -> Self {
        Engine {
            jobs: heteropipe::exec::default_parallelism(),
            cache: Some(ResultCache::on_disk(DEFAULT_CACHE_DIR)),
            metrics: RunMetrics::new(),
            traces: TraceStore::new(DEFAULT_TRACE_CAPACITY),
        }
    }

    /// Caps batch parallelism at `jobs` concurrent simulations (min 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Persists the cache under `dir` instead of the default.
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache = Some(ResultCache::on_disk(dir));
        self
    }

    /// Keeps the cache in memory only (no files written).
    pub fn memory_cache_only(mut self) -> Self {
        self.cache = Some(ResultCache::in_memory());
        self
    }

    /// Disables caching entirely: every job simulates (`--no-cache`).
    pub fn without_cache(mut self) -> Self {
        self.cache = None;
        self
    }

    /// Retains up to `cap` job traces instead of
    /// [`DEFAULT_TRACE_CAPACITY`] (clamped to ≥ 1).
    pub fn with_trace_capacity(mut self, cap: usize) -> Self {
        self.traces = TraceStore::new(cap);
        self
    }

    /// The configured batch parallelism.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The cache, if enabled.
    pub fn cache(&self) -> Option<&ResultCache> {
        self.cache.as_ref()
    }

    /// A snapshot of this engine's counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// The bounded store of recent job traces, keyed by run-key hex.
    pub fn traces(&self) -> &TraceStore {
        &self.traces
    }

    /// Executes a job like [`Executor::execute`], stamping `request_id`
    /// (the HTTP correlation id, when the job came in over the wire) onto
    /// the job's trace and log lines.
    pub fn execute_observed(&self, job: &JobSpec<'_>, request_id: Option<&str>) -> RunReport {
        self.execute_inner(job, request_id, 0)
    }

    /// The shared execution path: probes the cache, simulates on a miss,
    /// persists the result, and records a [`JobTrace`] of the lifecycle.
    /// `queue_ns` is time already spent waiting in the batch queue.
    fn execute_inner(
        &self,
        job: &JobSpec<'_>,
        request_id: Option<&str>,
        queue_ns: u64,
    ) -> RunReport {
        let mut timer = PhaseTimer::with_queue(queue_ns);
        let key = run_key(job);

        if let Some(cache) = &self.cache {
            let probe = timer.time("cache_probe", || cache.get(key));
            if let Some((report, tier)) = probe {
                let outcome = match tier {
                    CacheTier::Memory => {
                        self.metrics.record_memory_hit();
                        "memory_hit"
                    }
                    CacheTier::Disk => {
                        self.metrics.record_disk_hit();
                        "disk_hit"
                    }
                };
                self.store_trace(key, &report, request_id, outcome, timer, Vec::new());
                self.log_job(
                    obs_log::Level::Debug,
                    "cache hit",
                    key,
                    &report,
                    request_id,
                    outcome,
                );
                return report;
            }
            self.metrics.record_miss();
        }

        let start = Instant::now();
        let (report, spans) = timer.time("execute", || {
            heteropipe::run::run_traced(
                job.pipeline,
                job.config,
                job.organization,
                job.misalignment_sensitive,
            )
        });
        self.metrics
            .record_executed(report.roi.as_picos(), start.elapsed().as_nanos() as u64);
        if let Some(cache) = &self.cache {
            timer.time("persist", || cache.put(key, &report));
        }
        let sim_events = heteropipe::trace::span_events(&report.benchmark, &spans);
        self.store_trace(key, &report, request_id, "executed", timer, sim_events);
        self.log_job(
            obs_log::Level::Info,
            "job executed",
            key,
            &report,
            request_id,
            "executed",
        );
        report
    }

    fn store_trace(
        &self,
        key: RunKey,
        report: &RunReport,
        request_id: Option<&str>,
        outcome: &str,
        timer: PhaseTimer,
        sim_events: Vec<String>,
    ) {
        self.traces.insert(JobTrace {
            key_hex: key.hex(),
            benchmark: report.benchmark.clone(),
            request_id: request_id.map(str::to_owned),
            outcome: outcome.to_owned(),
            phases: timer.finish(),
            sim_events,
        });
    }

    fn log_job(
        &self,
        level: obs_log::Level,
        msg: &str,
        key: RunKey,
        report: &RunReport,
        request_id: Option<&str>,
        outcome: &str,
    ) {
        obs_log::log(
            level,
            "engine",
            msg,
            &[
                ("request_id", request_id.unwrap_or("-").into()),
                ("run_key", key.hex().into()),
                ("benchmark", report.benchmark.as_str().into()),
                ("outcome", outcome.into()),
                ("simulated_ps", report.roi.as_picos().into()),
            ],
        );
    }

    /// Prints the metrics summary footer to stderr (stdout stays reserved
    /// for the rendered tables, which must not differ hot vs cold).
    pub fn print_summary(&self) {
        eprintln!("{}", self.metrics().summary());
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

// The server in `heteropipe-serve` shares one engine across worker
// threads behind an `Arc`; these assertions keep that contract explicit.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Engine>();
    assert_send_sync::<ResultCache>();
    assert_send_sync::<RunMetrics>();
    assert_send_sync::<TraceStore>();
};

impl Executor for Engine {
    fn execute(&self, job: &JobSpec<'_>) -> RunReport {
        self.execute_inner(job, None, 0)
    }

    fn execute_batch(&self, jobs: &[JobSpec<'_>]) -> Vec<Result<RunReport, JobError>> {
        // Queue wait is measured from batch submission to the moment a
        // worker picks the job up; it shows up as the `queue` phase of the
        // job's trace.
        let submit = Instant::now();
        let out = par_map(jobs, self.jobs, |j| {
            let queue_ns = submit.elapsed().as_nanos() as u64;
            self.execute_inner(j, None, queue_ns)
        });
        for (i, r) in out.iter().enumerate() {
            if let Err(e) = r {
                self.metrics.record_failure();
                obs_log::error(
                    "engine",
                    "job failed",
                    &[
                        ("job_index", (i as u64).into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "heteropipe-engine-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn kmeans_spec<'a>(
        pipeline: &'a heteropipe_workloads::Pipeline,
        config: &'a SystemConfig,
    ) -> JobSpec<'a> {
        JobSpec {
            pipeline,
            config,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        }
    }

    #[test]
    fn warm_run_hits_and_matches_cold() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().memory_cache_only().with_jobs(2);
        let cold = engine.execute(&spec);
        let warm = engine.execute(&spec);
        assert_eq!(cold, warm);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 1);
        assert_eq!(m.memory_hits, 1);
        assert_eq!(m.misses, 1);
        assert!(m.simulated_ps > 0);
    }

    #[test]
    fn disk_cache_survives_engine_restart() {
        let dir = temp_dir("restart");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        assert_eq!(first.metrics().jobs_executed, 1);

        let second = Engine::new().with_cache_dir(&dir);
        let warm = second.execute(&spec);
        assert_eq!(warm, cold);
        let m = second.metrics();
        assert_eq!(m.jobs_executed, 0, "restarted engine must not re-simulate");
        assert_eq!(m.disk_hits, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_cache_file_is_recomputed() {
        let dir = temp_dir("corrupt");
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let first = Engine::new().with_cache_dir(&dir);
        let cold = first.execute(&spec);
        let path = first.cache().unwrap().path_for(run_key(&spec)).unwrap();
        std::fs::write(&path, b"\0\0garbage\0\0").unwrap();

        let second = Engine::new().with_cache_dir(&dir);
        let recomputed = second.execute(&spec);
        assert_eq!(recomputed, cold);
        let m = second.metrics();
        assert_eq!(m.disk_hits, 0, "garbage must not decode");
        assert_eq!(m.jobs_executed, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_cache_engine_always_executes() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().without_cache();
        let a = engine.execute(&spec);
        let b = engine.execute(&spec);
        assert_eq!(a, b, "simulator must be deterministic");
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2);
        assert_eq!(m.hits(), 0);
    }

    #[test]
    fn concurrent_executions_share_cache_without_corruption() {
        // Eight threads hammer one disk-backed engine with the same two
        // jobs: every result must be the deterministic report, and every
        // cache file written under the race must decode cleanly.
        use heteropipe::DirectExecutor;
        let dir = temp_dir("concurrent");
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let expected = [
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p1, &cfg)),
            DirectExecutor::with_jobs(1).execute(&kmeans_spec(&p2, &cfg)),
        ];

        let engine = std::sync::Arc::new(Engine::new().with_cache_dir(&dir));
        std::thread::scope(|s| {
            for t in 0..8 {
                let engine = std::sync::Arc::clone(&engine);
                let (p1, p2, cfg, expected) = (&p1, &p2, &cfg, &expected);
                s.spawn(move || {
                    for round in 0..3 {
                        let p = if (t + round) % 2 == 0 { p1 } else { p2 };
                        let got = engine.execute(&kmeans_spec(p, cfg));
                        let want = &expected[usize::from(got.benchmark == expected[1].benchmark)];
                        assert_eq!(&got, want, "thread {t} round {round}");
                    }
                });
            }
        });

        let m = engine.metrics();
        assert_eq!(m.jobs_total(), 24);
        assert!(
            m.jobs_executed >= 2,
            "both distinct jobs simulated at least once"
        );
        assert!(m.hits() > 0, "racing threads must reuse results");

        // Every .hpr the race left behind must be a decodable report.
        let mut files = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.extension().is_some_and(|e| e == "hpr") {
                files += 1;
                let bytes = std::fs::read(&path).unwrap();
                let report = codec::decode(&bytes)
                    .unwrap_or_else(|| panic!("{} is corrupt", path.display()));
                assert!(expected.contains(&report));
            }
        }
        assert_eq!(files, 2, "one intact cache file per distinct job");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traces_record_lifecycle_and_survive_cache_hits() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);

        let engine = Engine::new().memory_cache_only().with_trace_capacity(8);
        let cold = engine.execute_observed(&spec, Some("req-cold"));
        let key_hex = run_key(&spec).hex();

        let t = engine.traces().get(&key_hex).expect("cold run traced");
        assert_eq!(t.outcome, "executed");
        assert_eq!(t.request_id.as_deref(), Some("req-cold"));
        assert_eq!(t.benchmark, cold.benchmark);
        let names: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["cache_probe", "execute", "persist"]);
        assert!(
            !t.sim_events.is_empty(),
            "executed run carries sim timeline"
        );

        let warm = engine.execute_observed(&spec, Some("req-warm"));
        assert_eq!(warm, cold);
        let t = engine.traces().get(&key_hex).unwrap();
        assert_eq!(t.outcome, "memory_hit");
        assert_eq!(t.request_id.as_deref(), Some("req-warm"));
        assert!(
            !t.sim_events.is_empty(),
            "warm hit inherits the simulated timeline"
        );
        let json = engine.traces().render(&key_hex).unwrap();
        assert!(json.contains("\"request_id\":\"req-warm\""));
        assert!(json.contains("\"pid\":1"), "sim events present");
        assert!(json.contains(&format!("\"run_key\":\"{key_hex}\"")));
    }

    #[test]
    fn uncached_engine_still_traces() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = kmeans_spec(&p, &cfg);
        let engine = Engine::new().without_cache();
        engine.execute(&spec);
        let t = engine.traces().get(&run_key(&spec).hex()).unwrap();
        assert!(t.request_id.is_none());
        let names: Vec<&str> = t.phases.iter().map(|p| p.name.as_str()).collect();
        assert_eq!(names, ["execute"], "no cache phases without a cache");
    }

    #[test]
    fn batch_jobs_record_queue_phase() {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [kmeans_spec(&p, &cfg)];
        let engine = Engine::new().memory_cache_only();
        engine.execute_batch(&jobs).pop().unwrap().unwrap();
        let t = engine.traces().get(&run_key(&jobs[0]).hex()).unwrap();
        assert_eq!(
            t.phases.first().map(|p| p.name.as_str()),
            Some("queue"),
            "batch jobs start with their queue wait"
        );
    }

    #[test]
    fn engine_matches_direct_executor() {
        use heteropipe::DirectExecutor;
        let p = registry::find("pannotia/pr")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::heterogeneous();
        let spec = kmeans_spec(&p, &cfg);
        let via_engine = Engine::new().memory_cache_only().execute(&spec);
        let direct = DirectExecutor::new().execute(&spec);
        assert_eq!(via_engine, direct);
    }

    #[test]
    fn batches_hit_the_cache_and_keep_order() {
        let p1 = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let p2 = registry::find("rodinia/srad")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let jobs = [
            kmeans_spec(&p1, &cfg),
            kmeans_spec(&p2, &cfg),
            kmeans_spec(&p1, &cfg),
        ];

        // jobs=1 keeps the batch sequential so the duplicated job
        // deterministically hits the entry its twin just wrote.
        let engine = Engine::new().memory_cache_only().with_jobs(1);
        let first: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first[0].benchmark, first[2].benchmark);
        assert_eq!(first[0], first[2]);
        assert_ne!(first[0].benchmark, first[1].benchmark);

        let again: Vec<_> = engine
            .execute_batch(&jobs)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(first, again);
        let m = engine.metrics();
        assert_eq!(m.jobs_executed, 2, "three distinct keys, one duplicated");
        assert!(m.hits() >= 4);
    }
}
