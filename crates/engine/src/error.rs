//! Typed engine failures.
//!
//! The engine's happy path is infallible by design — the simulator is a
//! pure function and the cache degrades to recomputation — so errors only
//! arise from the resilience machinery itself: a job that keeps panicking
//! past its retry budget, or one already quarantined by an earlier
//! failure. [`Engine::try_execute`](crate::Engine::try_execute) surfaces
//! them; the `Executor` trait's infallible `execute` re-raises them as a
//! panic with the same message, which batch execution
//! ([`heteropipe::exec::par_map`]) and the HTTP layer both already catch
//! per job.

use std::fmt;

/// Why the engine could not produce a report for a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The job panicked on every attempt; the last panic message is
    /// carried along with the number of attempts made.
    JobPanicked {
        /// The job's run-key hex.
        key_hex: String,
        /// The final panic message.
        message: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
    /// The job was quarantined by an earlier run that exhausted its retry
    /// budget; the engine refuses to re-execute it until restart.
    Quarantined {
        /// The job's run-key hex.
        key_hex: String,
    },
}

impl EngineError {
    /// The run-key hex of the failing job.
    pub fn key_hex(&self) -> &str {
        match self {
            EngineError::JobPanicked { key_hex, .. } => key_hex,
            EngineError::Quarantined { key_hex } => key_hex,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::JobPanicked {
                key_hex,
                message,
                attempts,
            } => write!(
                f,
                "job {key_hex} panicked on all {attempts} attempts: {message}"
            ),
            EngineError::Quarantined { key_hex } => {
                write!(f, "job {key_hex} is quarantined after repeated failures")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_carry_the_key() {
        let e = EngineError::JobPanicked {
            key_hex: "ab".into(),
            message: "boom".into(),
            attempts: 3,
        };
        assert_eq!(e.key_hex(), "ab");
        assert!(e.to_string().contains("boom"));
        assert!(e.to_string().contains("3 attempts"));
        let q = EngineError::Quarantined {
            key_hex: "cd".into(),
        };
        assert!(q.to_string().contains("quarantined"));
    }
}
