//! Write-ahead sweep journal: the durability layer under async jobs.
//!
//! A [`Journal`] is a directory of per-job segment files
//! (`<key>.jnl` under `results/journal/` by default). Before an async
//! sweep or workflow executes, the driver writes an *intent* line — the
//! canonical job list, enough to re-create the work from nothing — via
//! the same dot-tmp-plus-rename discipline as the result cache, so a
//! crash leaves either no segment or a complete intent, never a torn
//! one. As each job completes, its rendered record line is *appended*
//! (write + flush; a `kill -9` loses at most the lines still in the
//! process's buffers, and those jobs simply re-execute). A trailing
//! *done* line seals the segment.
//!
//! On restart, [`Journal::incomplete`] lists segments with an intent but
//! no seal; the serving layer replays each one: re-parse the intent,
//! re-submit the sweep (the result cache turns every already-persisted
//! job into a hit), and append only the records the journal is missing —
//! the finished stream is byte-identical to an uninterrupted run.
//!
//! Corruption discipline mirrors the cache: every line carries an
//! FNV-1a checksum. A torn *tail* line (the crash landed mid-append) is
//! truncated and counted; a rotten line anywhere else condemns the whole
//! segment to `.quarantine/` (evidence for debugging) and replay reports
//! "nothing journaled", so the driver starts the job from its intent or
//! fails it cleanly instead of resuming from lies.
//!
//! The `journal.append` / `journal.replay` fault sites let the chaos
//! gate prove all of the above with a pinned seed; a journal failure is
//! never fatal to the job itself — the worst case is re-execution.

use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use heteropipe_faults::{FaultKind, Injector, Site};
use heteropipe_obs::log as obs_log;

/// Default journal directory, a sibling of the default result cache.
pub const DEFAULT_JOURNAL_DIR: &str = "results/journal";

/// Segment file extension.
const SEGMENT_EXT: &str = "jnl";

/// Subdirectory (under the journal dir) holding quarantined segments.
pub const QUARANTINE_DIR: &str = ".quarantine";

/// Counters behind `heteropipe_journal_*_total` (see
/// docs/observability.md).
#[derive(Debug, Default)]
struct JournalStats {
    appended: AtomicU64,
    replayed: AtomicU64,
    recovered: AtomicU64,
    tmp_swept: AtomicU64,
    segments_quarantined: AtomicU64,
    torn_truncated: AtomicU64,
    gc_swept: AtomicU64,
}

/// A point-in-time snapshot of the journal counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStatsSnapshot {
    /// Journal lines appended (intent, record, and done lines).
    pub appended: u64,
    /// Record lines successfully read back by replay.
    pub replayed: u64,
    /// Interrupted jobs resumed to completion after a restart.
    pub recovered: u64,
    /// Orphaned temp files swept at open.
    pub tmp_swept: u64,
    /// Corrupt segments moved to quarantine instead of failing replay.
    pub segments_quarantined: u64,
    /// Torn tail lines truncated during replay.
    pub torn_truncated: u64,
    /// Expired sealed segments deleted by [`Journal::gc`].
    pub gc_swept: u64,
}

/// What a segment held when it was replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replay {
    /// The intent payload exactly as [`Journal::begin`] wrote it.
    pub intent: String,
    /// Journaled `(index, payload)` record lines, in append order.
    pub records: Vec<(u64, String)>,
    /// Whether the segment carries the trailing done seal.
    pub done: bool,
}

impl Replay {
    /// The set of record indexes already journaled (the resume driver
    /// appends only indexes outside this set).
    pub fn indexes(&self) -> HashSet<u64> {
        self.records.iter().map(|&(i, _)| i).collect()
    }
}

/// The write-ahead journal over one directory of segment files. Cheap to
/// share behind an `Arc`; appends open the segment per call, so distinct
/// keys never contend and a segment has exactly one driver at a time.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    faults: Arc<Injector>,
    stats: JournalStats,
}

impl Journal {
    /// Opens (creating if needed) a journal rooted at `dir`, sweeping any
    /// `.*.tmp.*` orphans a crashed intent writer left behind.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Journal> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let journal = Journal {
            stats: JournalStats {
                tmp_swept: AtomicU64::new(crate::cache::sweep_stale_tmp(&dir)),
                ..JournalStats::default()
            },
            dir,
            faults: Arc::new(Injector::disabled()),
        };
        Ok(journal)
    }

    /// Threads a fault injector into the append and replay paths (the
    /// `journal.append` / `journal.replay` seams).
    pub fn with_faults(mut self, faults: Arc<Injector>) -> Journal {
        self.faults = faults;
        self
    }

    /// The directory this journal writes under.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Current counter values.
    pub fn stats(&self) -> JournalStatsSnapshot {
        JournalStatsSnapshot {
            appended: self.stats.appended.load(Ordering::Relaxed),
            replayed: self.stats.replayed.load(Ordering::Relaxed),
            recovered: self.stats.recovered.load(Ordering::Relaxed),
            tmp_swept: self.stats.tmp_swept.load(Ordering::Relaxed),
            segments_quarantined: self.stats.segments_quarantined.load(Ordering::Relaxed),
            torn_truncated: self.stats.torn_truncated.load(Ordering::Relaxed),
            gc_swept: self.stats.gc_swept.load(Ordering::Relaxed),
        }
    }

    /// Records that an interrupted job was resumed to completion.
    pub fn mark_recovered(&self) {
        self.stats.recovered.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether a segment exists for `key_hex`.
    pub fn contains(&self, key_hex: &str) -> bool {
        segment_key(key_hex)
            .map(|k| self.segment_path(&k).is_file())
            .unwrap_or(false)
    }

    /// Writes the intent line, atomically creating (or replacing) the
    /// segment: the whole segment goes through a dot-tmp file and a
    /// rename, so a crash mid-begin leaves no half-written intent.
    /// `intent` must be newline-free (canonical JSON is).
    pub fn begin(&self, key_hex: &str, intent: &str) -> std::io::Result<()> {
        let key = segment_key(key_hex)?;
        let line = seal_line(&format!("I {}", flatten(intent)));
        let line = self.roll_append(line.into_bytes())?;
        let tmp = self.dir.join(format!(
            ".{key}.{SEGMENT_EXT}.tmp.{}.{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &line).and_then(|()| {
            std::fs::rename(&tmp, self.segment_path(&key)).inspect_err(|_| {
                let _ = std::fs::remove_file(&tmp);
            })
        })?;
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Appends one completed-job record line and flushes it. `payload` is
    /// opaque to the journal (the serving layer stores its rendered
    /// NDJSON record) and must be newline-free.
    pub fn append_record(&self, key_hex: &str, index: u64, payload: &str) -> std::io::Result<()> {
        self.append_line(key_hex, &format!("R {index} {}", flatten(payload)))
    }

    /// Appends the done seal: the segment is complete, `records` lines
    /// were journaled, and restarts have nothing to resume.
    pub fn finish(&self, key_hex: &str, records: u64) -> std::io::Result<()> {
        self.append_line(key_hex, &format!("D {records}"))
    }

    /// Removes the segment for `key_hex` (an operator reset; replayable
    /// state is gone afterwards).
    pub fn remove(&self, key_hex: &str) -> std::io::Result<()> {
        let key = segment_key(key_hex)?;
        std::fs::remove_file(self.segment_path(&key))
    }

    /// Reads a segment back. `Ok(None)` means nothing usable is
    /// journaled: no segment, or a corrupt one (quarantined on the way
    /// out). A torn tail line is truncated, counted, and the rest of the
    /// segment is served.
    pub fn replay(&self, key_hex: &str) -> std::io::Result<Option<Replay>> {
        let key = segment_key(key_hex)?;
        let path = self.segment_path(&key);
        if let Some(fault) = self.faults.roll(Site::JournalReplay) {
            match fault.kind {
                FaultKind::Hang => {
                    std::thread::sleep(std::time::Duration::from_millis(fault.hang_ms))
                }
                FaultKind::Corrupt => {
                    // Emulate rot discovered mid-replay: condemn the
                    // segment exactly as a real checksum failure would.
                    self.quarantine(&key, &path, "injected corruption");
                    return Ok(None);
                }
                _ => return Err(fault.io_error()),
            }
        }
        let bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let text = String::from_utf8_lossy(&bytes);
        let mut lines: Vec<&str> = text.split('\n').collect();
        // A complete append always ends with '\n', so a non-empty final
        // element is a torn tail; drop it before verification. An empty
        // final element is the normal trailing split artifact.
        let torn_tail = lines.pop().is_some_and(|last| !last.is_empty());
        let mut replay = Replay {
            intent: String::new(),
            records: Vec::new(),
            done: false,
        };
        for (i, line) in lines.iter().enumerate() {
            let Some(payload) = open_line(line) else {
                if i + 1 == lines.len() {
                    // The rot is confined to the last sealed line: treat
                    // it like a torn tail and keep everything before it.
                    self.stats.torn_truncated.fetch_add(1, Ordering::Relaxed);
                    break;
                }
                self.quarantine(&key, &path, "checksum mismatch");
                return Ok(None);
            };
            let parsed = match payload.split_once(' ') {
                Some(("I", intent)) if i == 0 => {
                    replay.intent = intent.to_string();
                    true
                }
                Some(("R", rest)) if i > 0 && !replay.done => match rest.split_once(' ') {
                    Some((idx, body)) => match idx.parse::<u64>() {
                        Ok(idx) => {
                            replay.records.push((idx, body.to_string()));
                            true
                        }
                        Err(_) => false,
                    },
                    None => false,
                },
                Some(("D", n)) if i > 0 => {
                    replay.done = n.parse::<u64>().is_ok();
                    replay.done
                }
                _ => false,
            };
            if !parsed {
                self.quarantine(&key, &path, "malformed journal line");
                return Ok(None);
            }
        }
        if torn_tail {
            self.stats.torn_truncated.fetch_add(1, Ordering::Relaxed);
        }
        if replay.intent.is_empty() && replay.records.is_empty() && !replay.done {
            // Nothing survived truncation: an empty segment is no segment.
            return Ok(None);
        }
        self.stats
            .replayed
            .fetch_add(replay.records.len() as u64, Ordering::Relaxed);
        Ok(Some(replay))
    }

    /// Keys of segments holding an intent but no done seal — the jobs a
    /// restart must resume, oldest first (directory order is fine; the
    /// resume driver runs them all).
    pub fn incomplete(&self) -> Vec<String> {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return Vec::new();
        };
        let mut keys = Vec::new();
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(key) = name.strip_suffix(&format!(".{SEGMENT_EXT}")) else {
                continue;
            };
            if segment_key(key).is_err() {
                continue;
            }
            if let Ok(Some(replay)) = self.replay(key) {
                if !replay.done {
                    keys.push(key.to_string());
                }
            }
        }
        keys.sort();
        keys
    }

    /// Deletes sealed segments whose last modification is older than
    /// `keep`, returning how many were swept. Only segments replay shows
    /// as done are eligible — an unsealed segment is pending resume work
    /// no matter how old it is — and quarantined segments are left for
    /// the operator. Run once at startup (before resume) by the durable
    /// servers' `--journal-keep` retention flag; the count lands in
    /// `heteropipe_journal_gc_total`.
    pub fn gc(&self, keep: std::time::Duration) -> u64 {
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return 0;
        };
        let now = std::time::SystemTime::now();
        let mut swept = 0u64;
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let Some(key) = name.strip_suffix(&format!(".{SEGMENT_EXT}")) else {
                continue;
            };
            if segment_key(key).is_err() {
                continue;
            }
            let expired = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_some_and(|age| age > keep);
            if !expired {
                continue;
            }
            let sealed = matches!(self.replay(key), Ok(Some(replay)) if replay.done);
            if sealed && std::fs::remove_file(entry.path()).is_ok() {
                swept += 1;
            }
        }
        if swept > 0 {
            self.stats.gc_swept.fetch_add(swept, Ordering::Relaxed);
            obs_log::info(
                "journal",
                "expired sealed segments swept",
                &[("swept", swept.into()), ("keep_s", keep.as_secs().into())],
            );
        }
        swept
    }

    // ---- internals --------------------------------------------------------

    fn segment_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.{SEGMENT_EXT}"))
    }

    fn append_line(&self, key_hex: &str, payload: &str) -> std::io::Result<()> {
        let key = segment_key(key_hex)?;
        let line = self.roll_append(seal_line(payload).into_bytes())?;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(self.segment_path(&key))?;
        f.write_all(&line)?;
        f.flush()?;
        self.stats.appended.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// The `journal.append` fault seam: `corrupt` rots the sealed line in
    /// flight (replay must catch it), `hang` stalls, anything else is the
    /// I/O error a full or failing disk would raise.
    fn roll_append(&self, mut line: Vec<u8>) -> std::io::Result<Vec<u8>> {
        if let Some(fault) = self.faults.roll(Site::JournalAppend) {
            match fault.kind {
                FaultKind::Corrupt => {
                    if let Some(b) = line.first_mut() {
                        *b ^= 0x01;
                    }
                }
                FaultKind::Hang => {
                    std::thread::sleep(std::time::Duration::from_millis(fault.hang_ms))
                }
                _ => return Err(fault.io_error()),
            }
        }
        Ok(line)
    }

    fn quarantine(&self, key: &str, path: &Path, why: &str) {
        self.stats
            .segments_quarantined
            .fetch_add(1, Ordering::Relaxed);
        let qdir = self.dir.join(QUARANTINE_DIR);
        let moved = std::fs::create_dir_all(&qdir).is_ok()
            && std::fs::rename(path, qdir.join(format!("{key}.{SEGMENT_EXT}"))).is_ok();
        if !moved {
            let _ = std::fs::remove_file(path);
        }
        obs_log::warn(
            "journal",
            "corrupt segment quarantined",
            &[
                ("key", key.to_string().into()),
                ("reason", why.to_string().into()),
                ("moved", moved.into()),
            ],
        );
    }
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Validates and canonicalizes a segment key: run/sweep/workflow keys are
/// 32 lowercase hex characters, which also keeps the key filename-safe.
fn segment_key(key_hex: &str) -> std::io::Result<String> {
    if key_hex.len() == 32 && key_hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        Ok(key_hex.to_ascii_lowercase())
    } else {
        Err(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("journal key must be 32 hex characters, got {key_hex:?}"),
        ))
    }
}

/// Journal payloads are single lines; canonical JSON never carries raw
/// newlines, but the journal defends itself anyway.
fn flatten(payload: &str) -> String {
    if payload.contains('\n') || payload.contains('\r') {
        payload.replace(['\n', '\r'], " ")
    } else {
        payload.to_string()
    }
}

/// One sealed journal line: `"<fnv64-hex> <payload>\n"`.
fn seal_line(payload: &str) -> String {
    format!("{:016x} {payload}\n", fnv64(payload.as_bytes()))
}

/// Verifies a sealed line, returning the payload when the checksum holds.
fn open_line(line: &str) -> Option<&str> {
    let (sum, payload) = line.split_once(' ')?;
    let sum = u64::from_str_radix(sum, 16).ok()?;
    (sum == fnv64(payload.as_bytes())).then_some(payload)
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_faults::FaultPlan;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "heteropipe-journal-{name}-{}-{}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    const KEY: &str = "0123456789abcdef0123456789abcdef";

    #[test]
    fn journal_round_trips_and_seals() {
        let dir = tmpdir("roundtrip");
        let j = Journal::open(&dir).unwrap();
        assert!(!j.contains(KEY));
        j.begin(KEY, r#"{"jobs":[{"benchmark":"x"}]}"#).unwrap();
        assert!(j.contains(KEY));
        j.append_record(KEY, 0, r#"{"index":0,"status":"ok"}"#)
            .unwrap();
        j.append_record(KEY, 2, r#"{"index":2,"status":"ok"}"#)
            .unwrap();
        let partial = j.replay(KEY).unwrap().unwrap();
        assert_eq!(partial.intent, r#"{"jobs":[{"benchmark":"x"}]}"#);
        assert_eq!(partial.records.len(), 2);
        assert!(!partial.done);
        assert_eq!(j.incomplete(), vec![KEY.to_string()]);

        j.finish(KEY, 2).unwrap();
        let full = j.replay(KEY).unwrap().unwrap();
        assert!(full.done);
        assert!(full.indexes().contains(&2));
        assert!(j.incomplete().is_empty());
        let stats = j.stats();
        assert_eq!(stats.appended, 4);
        assert!(stats.replayed >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_truncates_but_corrupt_middle_quarantines() {
        let dir = tmpdir("torn");
        let j = Journal::open(&dir).unwrap();
        j.begin(KEY, "intent").unwrap();
        j.append_record(KEY, 0, "rec0").unwrap();
        let path = j.segment_path(KEY);

        // A crash mid-append leaves a half line with no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(b"deadbeef R 1 torn-half-li");
        std::fs::write(&path, &bytes).unwrap();
        let replay = j.replay(KEY).unwrap().unwrap();
        assert_eq!(replay.records, vec![(0, "rec0".to_string())]);
        assert_eq!(j.stats().torn_truncated, 1);

        // Rot in the middle of the segment condemns the whole thing: a
        // fresh well-formed segment with its first record line rotted.
        j.begin(KEY, "intent").unwrap();
        j.append_record(KEY, 0, "rec0").unwrap();
        j.append_record(KEY, 1, "rec1").unwrap();
        let rotten = std::fs::read_to_string(&path)
            .unwrap()
            .replace("rec0", "rot!");
        std::fs::write(&path, rotten).unwrap();
        assert_eq!(j.replay(KEY).unwrap(), None);
        assert!(!path.exists(), "segment moved out");
        assert!(dir
            .join(QUARANTINE_DIR)
            .join(format!("{KEY}.{SEGMENT_EXT}"))
            .exists());
        assert_eq!(j.stats().segments_quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_orphaned_tmp_files() {
        let dir = tmpdir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(format!(".{KEY}.jnl.tmp.1.2")), b"orphan").unwrap();
        let j = Journal::open(&dir).unwrap();
        assert_eq!(j.stats().tmp_swept, 1);
        assert!(!dir.join(format!(".{KEY}.jnl.tmp.1.2")).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_faults_surface_and_corrupt_rots_detectably() {
        let dir = tmpdir("faults");
        let j = Journal::open(&dir)
            .unwrap()
            .with_faults(Arc::new(Injector::new(
                FaultPlan::parse("journal.append:err=enospc:max=1").unwrap(),
            )));
        let err = j.begin(KEY, "intent").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::StorageFull);
        j.begin(KEY, "intent").unwrap();

        let rot = Journal::open(&dir)
            .unwrap()
            .with_faults(Arc::new(Injector::new(
                FaultPlan::parse("journal.append:err=corrupt:max=1").unwrap(),
            )));
        rot.append_record(KEY, 0, "rec0").unwrap();
        // The rotten line is the last sealed line: replay truncates it
        // and keeps the clean prefix instead of condemning the segment.
        let replay = rot.replay(KEY).unwrap().unwrap();
        assert_eq!(replay.intent, "intent");
        assert!(replay.records.is_empty());
        assert_eq!(rot.stats().torn_truncated, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_fault_quarantines_or_errors() {
        let dir = tmpdir("replayfault");
        let j = Journal::open(&dir).unwrap();
        j.begin(KEY, "intent").unwrap();
        let eio = Journal::open(&dir)
            .unwrap()
            .with_faults(Arc::new(Injector::new(
                FaultPlan::parse("journal.replay:err=eio:max=1").unwrap(),
            )));
        assert!(eio.replay(KEY).is_err());
        assert!(eio.replay(KEY).unwrap().is_some(), "budget spent");

        let corrupt = Journal::open(&dir)
            .unwrap()
            .with_faults(Arc::new(Injector::new(
                FaultPlan::parse("journal.replay:err=corrupt:max=1").unwrap(),
            )));
        assert_eq!(corrupt.replay(KEY).unwrap(), None);
        assert_eq!(corrupt.stats().segments_quarantined, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_sweeps_only_expired_sealed_segments() {
        let dir = tmpdir("gc");
        let j = Journal::open(&dir).unwrap();
        const SEALED: &str = "aaaa0000aaaa0000aaaa0000aaaa0000";
        const OPEN: &str = "bbbb0000bbbb0000bbbb0000bbbb0000";
        j.begin(SEALED, "intent").unwrap();
        j.append_record(SEALED, 0, "rec0").unwrap();
        j.finish(SEALED, 1).unwrap();
        j.begin(OPEN, "intent").unwrap();

        // Everything is brand new: a generous threshold sweeps nothing.
        assert_eq!(j.gc(std::time::Duration::from_secs(3600)), 0);
        // A zero threshold makes both segments "old", but only the sealed
        // one is eligible; the unsealed one still has resume work.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(j.gc(std::time::Duration::ZERO), 1);
        assert!(!j.contains(SEALED));
        assert!(j.contains(OPEN));
        assert_eq!(j.stats().gc_swept, 1);
        assert_eq!(j.incomplete(), vec![OPEN.to_string()]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rejects_path_smuggling_keys() {
        let dir = tmpdir("keys");
        let j = Journal::open(&dir).unwrap();
        for bad in ["../evil", "short", "", &"g".repeat(32)] {
            assert!(j.begin(bad, "intent").is_err(), "{bad:?}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
