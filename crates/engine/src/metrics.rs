//! Per-invocation run metrics: how much work the engine did, how much the
//! cache saved, and where the wall time went.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters the engine bumps as it executes and serves jobs.
#[derive(Debug, Default)]
pub struct RunMetrics {
    jobs_executed: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    failures: AtomicU64,
    simulated_ps: AtomicU64,
    wall_ns: AtomicU64,
    exec_retries: AtomicU64,
    jobs_quarantined: AtomicU64,
    watchdog_fired: AtomicU64,
    sweeps: AtomicU64,
    sweep_jobs: AtomicU64,
    sweep_deduped: AtomicU64,
    flights_coalesced: AtomicU64,
}

impl RunMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn record_executed(&self, simulated_ps: u64, wall_ns: u64) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        self.simulated_ps.fetch_add(simulated_ps, Ordering::Relaxed);
        self.wall_ns.fetch_add(wall_ns, Ordering::Relaxed);
    }

    pub(crate) fn record_memory_hit(&self) {
        self.memory_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_disk_hit(&self) {
        self.disk_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_failure(&self) {
        self.failures.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_exec_retry(&self) {
        self.exec_retries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_job_quarantined(&self) {
        self.jobs_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_watchdog_fired(&self) {
        self.watchdog_fired.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_sweep(&self, jobs: u64, duplicates: u64) {
        self.sweeps.fetch_add(1, Ordering::Relaxed);
        self.sweep_jobs.fetch_add(jobs, Ordering::Relaxed);
        self.sweep_deduped.fetch_add(duplicates, Ordering::Relaxed);
    }

    pub(crate) fn record_flight_coalesced(&self) {
        self.flights_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters. Cache-level resilience
    /// counters are zero here; [`crate::Engine::metrics`] merges them in.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            jobs_executed: self.jobs_executed.load(Ordering::Relaxed),
            memory_hits: self.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            failures: self.failures.load(Ordering::Relaxed),
            simulated_ps: self.simulated_ps.load(Ordering::Relaxed),
            wall_ns: self.wall_ns.load(Ordering::Relaxed),
            exec_retries: self.exec_retries.load(Ordering::Relaxed),
            jobs_quarantined: self.jobs_quarantined.load(Ordering::Relaxed),
            watchdog_fired: self.watchdog_fired.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            sweep_jobs: self.sweep_jobs.load(Ordering::Relaxed),
            sweep_deduped: self.sweep_deduped.load(Ordering::Relaxed),
            flights_coalesced: self.flights_coalesced.load(Ordering::Relaxed),
            cache: crate::cache::CacheStatsSnapshot::default(),
        }
    }
}

/// A frozen view of [`RunMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Jobs actually simulated (cache misses and uncached runs).
    pub jobs_executed: u64,
    /// Jobs served from the in-memory cache tier.
    pub memory_hits: u64,
    /// Jobs served from the on-disk cache tier.
    pub disk_hits: u64,
    /// Cache lookups that found nothing (each is followed by an execution).
    pub misses: u64,
    /// Jobs that panicked inside a batch.
    pub failures: u64,
    /// Total simulated time across executed jobs, picoseconds.
    pub simulated_ps: u64,
    /// Total wall-clock time spent simulating, nanoseconds (sums across
    /// workers, so it can exceed elapsed time under parallelism).
    pub wall_ns: u64,
    /// Execution attempts retried after a panic (injected or real).
    pub exec_retries: u64,
    /// Jobs quarantined after exhausting their retry budget.
    pub jobs_quarantined: u64,
    /// Jobs whose execution overran the configured watchdog deadline.
    pub watchdog_fired: u64,
    /// Sweeps (deduplicated batches) executed.
    pub sweeps: u64,
    /// Entries submitted across all sweeps, duplicates included.
    pub sweep_jobs: u64,
    /// Sweep entries folded onto another entry with the same run key
    /// instead of occupying a worker slot.
    pub sweep_deduped: u64,
    /// Jobs that coalesced onto a concurrent identical execution
    /// (single-flight: one leader executed, these waited for its result).
    pub flights_coalesced: u64,
    /// The cache's resilience counters (temp sweeps, quarantined records,
    /// read errors, persist retries/failures).
    pub cache: crate::cache::CacheStatsSnapshot,
}

impl MetricsSnapshot {
    /// Cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits
    }

    /// Total jobs the engine was asked for: executions, cache hits, and
    /// jobs coalesced onto a concurrent identical execution.
    pub fn jobs_total(&self) -> u64 {
        self.jobs_executed + self.hits() + self.flights_coalesced
    }

    /// Hit fraction in `[0, 1]` (0 when no lookups happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.jobs_total();
        if total == 0 {
            0.0
        } else {
            self.hits() as f64 / total as f64
        }
    }

    /// Mean wall time per executed job, nanoseconds.
    pub fn mean_wall_ns_per_job(&self) -> u64 {
        self.wall_ns.checked_div(self.jobs_executed).unwrap_or(0)
    }

    /// The one-line summary footer (goes to stderr so stdout tables stay
    /// byte-identical across cold and warm runs).
    pub fn summary(&self) -> String {
        let mut out = format!(
            "engine: {} jobs ({} executed, {} cache hits [{} mem, {} disk], {:.0}% hit rate), \
             {:.3} s simulated, {:.3} s wall ({} ms/job), {} failed",
            self.jobs_total(),
            self.jobs_executed,
            self.hits(),
            self.memory_hits,
            self.disk_hits,
            self.hit_rate() * 100.0,
            self.simulated_ps as f64 / 1e12,
            self.wall_ns as f64 / 1e9,
            self.mean_wall_ns_per_job() / 1_000_000,
            self.failures,
        );
        if self.recoveries() > 0 {
            out.push_str(&format!(
                ", recoveries: {} exec retries, {} persist retries, {} records quarantined, \
                 {} jobs quarantined, {} watchdog overruns, {} tmp swept",
                self.exec_retries,
                self.cache.persist_retries,
                self.cache.records_quarantined,
                self.jobs_quarantined,
                self.watchdog_fired,
                self.cache.tmp_swept,
            ));
        }
        if self.sweeps > 0 || self.flights_coalesced > 0 {
            out.push_str(&format!(
                ", sweeps: {} ({} jobs, {} deduped), {} coalesced",
                self.sweeps, self.sweep_jobs, self.sweep_deduped, self.flights_coalesced,
            ));
        }
        out
    }

    /// Total resilience events (retries, quarantines, watchdog overruns,
    /// temp sweeps) — zero on a fault-free run.
    pub fn recoveries(&self) -> u64 {
        self.exec_retries
            + self.jobs_quarantined
            + self.watchdog_fired
            + self.cache.tmp_swept
            + self.cache.records_quarantined
            + self.cache.read_errors
            + self.cache.persist_retries
            + self.cache.persist_failures
    }

    /// CSV export: a header line plus one data row.
    pub fn to_csv(&self) -> String {
        format!(
            "jobs_total,jobs_executed,memory_hits,disk_hits,misses,failures,hit_rate,simulated_ps,wall_ns,\
             exec_retries,jobs_quarantined,watchdog_fired,tmp_swept,records_quarantined,\
             cache_read_errors,persist_retries,persist_failures,\
             sweeps,sweep_jobs,sweep_deduped,flights_coalesced\n\
             {},{},{},{},{},{},{:.4},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            self.jobs_total(),
            self.jobs_executed,
            self.memory_hits,
            self.disk_hits,
            self.misses,
            self.failures,
            self.hit_rate(),
            self.simulated_ps,
            self.wall_ns,
            self.exec_retries,
            self.jobs_quarantined,
            self.watchdog_fired,
            self.cache.tmp_swept,
            self.cache.records_quarantined,
            self.cache.read_errors,
            self.cache.persist_retries,
            self.cache.persist_failures,
            self.sweeps,
            self.sweep_jobs,
            self.sweep_deduped,
            self.flights_coalesced,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = RunMetrics::new();
        m.record_executed(5_000, 700);
        m.record_executed(3_000, 300);
        m.record_memory_hit();
        m.record_disk_hit();
        m.record_miss();
        m.record_miss();
        let s = m.snapshot();
        assert_eq!(s.jobs_executed, 2);
        assert_eq!(s.hits(), 2);
        assert_eq!(s.jobs_total(), 4);
        assert_eq!(s.misses, 2);
        assert_eq!(s.simulated_ps, 8_000);
        assert_eq!(s.wall_ns, 1_000);
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(s.mean_wall_ns_per_job(), 500);
    }

    #[test]
    fn summary_and_csv_render() {
        let m = RunMetrics::new();
        m.record_executed(1_000_000, 2_000_000);
        m.record_memory_hit();
        let s = m.snapshot();
        assert!(s.summary().contains("2 jobs"));
        assert!(s.summary().contains("1 executed"));
        let csv = s.to_csv();
        assert!(csv.starts_with("jobs_total,"));
        assert_eq!(csv.lines().count(), 2);
    }

    /// Snapshots taken while other threads are recording: every counter
    /// is monotone across successive snapshots, no snapshot exceeds the
    /// eventual totals, and the final tallies are exact — no recording is
    /// lost or double-counted under contention.
    #[test]
    fn snapshots_stay_consistent_under_concurrent_recording() {
        let m = RunMetrics::new();
        const THREADS: u64 = 4;
        const PER_THREAD: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for i in 0..PER_THREAD {
                        m.record_miss();
                        m.record_executed(10, 7);
                        if i % 2 == 0 {
                            m.record_memory_hit();
                        } else {
                            m.record_disk_hit();
                        }
                    }
                });
            }
            s.spawn(|| {
                let mut prev = MetricsSnapshot::default();
                for _ in 0..200 {
                    let s = m.snapshot();
                    for (now, before, name) in [
                        (s.jobs_executed, prev.jobs_executed, "jobs_executed"),
                        (s.memory_hits, prev.memory_hits, "memory_hits"),
                        (s.disk_hits, prev.disk_hits, "disk_hits"),
                        (s.misses, prev.misses, "misses"),
                        (s.simulated_ps, prev.simulated_ps, "simulated_ps"),
                        (s.wall_ns, prev.wall_ns, "wall_ns"),
                    ] {
                        assert!(now >= before, "{name} went backwards: {before} -> {now}");
                    }
                    assert!(s.jobs_executed <= THREADS * PER_THREAD);
                    assert!(s.simulated_ps <= THREADS * PER_THREAD * 10);
                    assert!((0.0..=1.0).contains(&s.hit_rate()));
                    prev = s;
                }
            });
        });
        let s = m.snapshot();
        assert_eq!(s.jobs_executed, THREADS * PER_THREAD);
        assert_eq!(s.misses, THREADS * PER_THREAD);
        assert_eq!(s.hits(), THREADS * PER_THREAD);
        assert_eq!(s.memory_hits, THREADS * PER_THREAD / 2);
        assert_eq!(s.simulated_ps, THREADS * PER_THREAD * 10);
    }

    #[test]
    fn sweep_counters_accumulate_and_render() {
        let m = RunMetrics::new();
        m.record_sweep(6, 2);
        m.record_sweep(3, 0);
        m.record_flight_coalesced();
        let s = m.snapshot();
        assert_eq!(s.sweeps, 2);
        assert_eq!(s.sweep_jobs, 9);
        assert_eq!(s.sweep_deduped, 2);
        assert_eq!(s.flights_coalesced, 1);
        let summary = s.summary();
        assert!(
            summary.contains("sweeps: 2 (9 jobs, 2 deduped)"),
            "{summary}"
        );
        assert!(summary.contains("1 coalesced"), "{summary}");
        assert!(
            !RunMetrics::new().snapshot().summary().contains("sweeps"),
            "sweep-free summary stays unchanged"
        );
    }

    #[test]
    fn empty_metrics_are_safe() {
        let s = RunMetrics::new().snapshot();
        assert_eq!(s.hit_rate(), 0.0);
        assert_eq!(s.mean_wall_ns_per_job(), 0);
        assert!(s.summary().contains("0 jobs"));
        assert_eq!(s.recoveries(), 0);
        assert!(
            !s.summary().contains("recoveries"),
            "fault-free summary stays unchanged"
        );
    }

    #[test]
    fn recovery_counters_roll_up_and_render() {
        let m = RunMetrics::new();
        m.record_exec_retry();
        m.record_exec_retry();
        m.record_job_quarantined();
        m.record_watchdog_fired();
        let mut s = m.snapshot();
        s.cache.persist_retries = 3;
        s.cache.records_quarantined = 1;
        s.cache.tmp_swept = 2;
        assert_eq!(s.recoveries(), 2 + 1 + 1 + 3 + 1 + 2);
        let summary = s.summary();
        assert!(summary.contains("2 exec retries"), "{summary}");
        assert!(summary.contains("1 records quarantined"), "{summary}");
        assert!(summary.contains("2 tmp swept"), "{summary}");
        let csv = s.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.ends_with("flights_coalesced"), "{header}");
        assert_eq!(
            header.split(',').count(),
            csv.lines().nth(1).unwrap().split(',').count(),
            "every column has a value"
        );
    }
}
