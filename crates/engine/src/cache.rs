//! Two-tier content-addressed result cache.
//!
//! Tier 1 is an in-process map (always on while the cache is enabled); tier
//! 2 is a directory of `<key>.hpr` files — one [`codec`](crate::codec)
//! record per run key — that persists results across invocations. Disk
//! reads that fail for any reason (missing file, torn write, stale format,
//! bit rot) are treated as misses and the entry is recomputed and
//! rewritten; the cache never surfaces an error for corrupt content.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so concurrent writers and killed processes leave either the old
//! bytes or the new bytes, never a torn record.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use heteropipe::RunReport;
use heteropipe_obs::log as obs_log;

use crate::codec;
use crate::key::RunKey;

/// Where a cache lookup was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-process map.
    Memory,
    /// A `<key>.hpr` file.
    Disk,
}

/// The result cache.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<u128, RunReport>>,
    disk_dir: Option<PathBuf>,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: None,
        }
    }

    /// A cache persisting to `dir` (created on first write).
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            disk_dir: Some(dir.into()),
        }
    }

    /// The disk directory, if this cache persists.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The on-disk path for `key` (even if the file does not exist yet).
    pub fn path_for(&self, key: RunKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.hpr", key.hex())))
    }

    /// Looks `key` up, reporting which tier served it.
    pub fn get(&self, key: RunKey) -> Option<(RunReport, CacheTier)> {
        if let Some(hit) = self.memory.lock().unwrap().get(&key.0) {
            return Some((hit.clone(), CacheTier::Memory));
        }
        let path = self.path_for(key)?;
        let bytes = std::fs::read(path).ok()?;
        let report = codec::decode(&bytes)?; // corrupt file == miss
        self.memory.lock().unwrap().insert(key.0, report.clone());
        Some((report, CacheTier::Disk))
    }

    /// Stores `report` under `key` in both tiers. Disk errors (read-only
    /// filesystem, disk full) never surface to the caller — caching is an
    /// optimization, never a correctness requirement — but each failure is
    /// logged at warn level so a silently cold cache is diagnosable.
    pub fn put(&self, key: RunKey, report: &RunReport) {
        self.memory.lock().unwrap().insert(key.0, report.clone());
        let Some(path) = self.path_for(key) else {
            return;
        };
        let Some(dir) = path.parent() else { return };
        if let Err(e) = std::fs::create_dir_all(dir) {
            self.warn_persist(key, "create cache dir", &e);
            return;
        }
        let tmp = dir.join(format!(
            ".{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        match std::fs::write(&tmp, codec::encode(report)) {
            Ok(()) => {
                if let Err(e) = std::fs::rename(&tmp, &path) {
                    self.warn_persist(key, "rename into place", &e);
                    let _ = std::fs::remove_file(&tmp);
                }
            }
            Err(e) => self.warn_persist(key, "write temp file", &e),
        }
    }

    fn warn_persist(&self, key: RunKey, op: &str, err: &std::io::Error) {
        obs_log::warn(
            "engine",
            "cache persist failed",
            &[
                ("run_key", key.hex().into()),
                ("op", op.into()),
                ("error", err.to_string().into()),
            ],
        );
    }

    /// Entries currently held in memory.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{DirectExecutor, Executor, JobSpec, Organization, SystemConfig};
    use heteropipe_workloads::{registry, Scale};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "heteropipe-cache-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> (RunKey, RunReport) {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = JobSpec {
            pipeline: &p,
            config: &cfg,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        };
        (
            crate::key::run_key(&spec),
            DirectExecutor::new().execute(&spec),
        )
    }

    #[test]
    fn memory_round_trip() {
        let (key, report) = sample();
        let cache = ResultCache::in_memory();
        assert!(cache.get(key).is_none());
        cache.put(key, &report);
        let (back, tier) = cache.get(key).unwrap();
        assert_eq!(back, report);
        assert_eq!(tier, CacheTier::Memory);
    }

    #[test]
    fn disk_round_trip_across_instances() {
        let dir = temp_dir("roundtrip");
        let (key, report) = sample();
        ResultCache::on_disk(&dir).put(key, &report);

        // A fresh instance (cold memory) must hit the disk tier.
        let cold = ResultCache::on_disk(&dir);
        let (back, tier) = cold.get(key).unwrap();
        assert_eq!(back, report);
        assert_eq!(tier, CacheTier::Disk);
        // ...and promote to memory.
        assert_eq!(cold.get(key).unwrap().1, CacheTier::Memory);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_is_a_miss() {
        let dir = temp_dir("corrupt");
        let (key, report) = sample();
        let cache = ResultCache::on_disk(&dir);
        cache.put(key, &report);

        let path = cache.path_for(key).unwrap();
        std::fs::write(&path, b"not a cache record").unwrap();

        let cold = ResultCache::on_disk(&dir);
        assert!(cold.get(key).is_none(), "corrupt file must read as a miss");

        // Re-putting repairs the file.
        cold.put(key, &report);
        assert_eq!(ResultCache::on_disk(&dir).get(key).unwrap().0, report);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_harmless() {
        let dir = temp_dir("absent");
        let cache = ResultCache::on_disk(&dir);
        let (key, _) = sample();
        assert!(cache.get(key).is_none());
    }
}
