//! Two-tier content-addressed result cache.
//!
//! Tier 1 is an in-process map (always on while the cache is enabled); tier
//! 2 is a directory of `<key>.hpr` files — one [`codec`](crate::codec)
//! record per run key — that persists results across invocations. Disk
//! reads that fail for any reason (missing file, torn write, stale format,
//! bit rot) are treated as misses and the entry is recomputed and
//! rewritten; the cache never surfaces an error for corrupt content.
//!
//! Writes go through a temp file in the same directory followed by a
//! rename, so concurrent writers and killed processes leave either the old
//! bytes or the new bytes, never a torn record.
//!
//! Robustness machinery (see `docs/robustness.md`):
//!
//! * **Stale temp sweep** — writers killed between write and rename leak
//!   `.*.tmp.*` files; opening a disk cache sweeps and counts them.
//! * **Corrupt-record quarantine** — a file that reads fine but fails to
//!   decode is moved into `.quarantine/` (evidence for debugging) and the
//!   lookup misses, so the engine transparently re-executes and rewrites
//!   a clean record: the cache self-heals.
//! * **Retried persist** — transient write failures (disk full, injected
//!   `cache.write` faults) are retried under a capped exponential backoff
//!   with jitter derived from the run key; persistent failure is still
//!   only a warning, because caching is an optimization.
//! * **Fault seams** — [`ResultCache::set_faults`] threads a
//!   [`heteropipe_faults::Injector`] into the read and write paths so a
//!   chaos run can exercise every branch above deterministically.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use heteropipe::RunReport;
use heteropipe_faults::{with_retries, FaultKind, Injector, RetryPolicy, Site};
use heteropipe_obs::log as obs_log;

use crate::codec;
use crate::key::RunKey;

/// Subdirectory (under the cache dir) holding quarantined corrupt records.
pub const QUARANTINE_DIR: &str = ".quarantine";

/// Where a cache lookup was served from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// The in-process map.
    Memory,
    /// A `<key>.hpr` file.
    Disk,
}

/// Counters for the cache's resilience machinery.
#[derive(Debug, Default)]
struct CacheStats {
    tmp_swept: AtomicU64,
    records_quarantined: AtomicU64,
    read_errors: AtomicU64,
    persist_retries: AtomicU64,
    persist_failures: AtomicU64,
}

/// A point-in-time copy of the cache's resilience counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStatsSnapshot {
    /// Stale `.*.tmp.*` files swept when the cache was opened.
    pub tmp_swept: u64,
    /// Corrupt records moved to `.quarantine/` (each then re-executed).
    pub records_quarantined: u64,
    /// Disk reads that failed with an I/O error (served as misses).
    pub read_errors: u64,
    /// Persist attempts retried after a transient failure.
    pub persist_retries: u64,
    /// Persists abandoned after the retry budget (entry stays memory-only).
    pub persist_failures: u64,
}

/// The result cache.
#[derive(Debug)]
pub struct ResultCache {
    memory: Mutex<HashMap<u128, Arc<RunReport>>>,
    /// Encoded-record tier for the zero-copy warm path: the exact `.hpr`
    /// bytes per key, shared out as `Arc`s so warm `GET /v1/runs/{key}`
    /// reads clone a pointer, not a report. Populated on `put` (from the
    /// bytes just encoded for disk) and on validated disk reads.
    bytes: Mutex<HashMap<u128, Arc<Vec<u8>>>>,
    disk_dir: Option<PathBuf>,
    faults: Arc<Injector>,
    retry: RetryPolicy,
    stats: CacheStats,
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl ResultCache {
    /// A memory-only cache (no persistence).
    pub fn in_memory() -> Self {
        ResultCache {
            memory: Mutex::new(HashMap::new()),
            bytes: Mutex::new(HashMap::new()),
            disk_dir: None,
            faults: Arc::new(Injector::disabled()),
            retry: RetryPolicy::DEFAULT,
            stats: CacheStats::default(),
        }
    }

    /// A cache persisting to `dir` (created on first write). Stale temp
    /// files left by crashed writers are swept immediately.
    pub fn on_disk(dir: impl Into<PathBuf>) -> Self {
        let mut cache = ResultCache::in_memory();
        let dir = dir.into();
        cache.stats.tmp_swept = AtomicU64::new(sweep_stale_tmp(&dir));
        cache.disk_dir = Some(dir);
        cache
    }

    /// Threads a fault injector into the disk read/write paths.
    pub fn set_faults(&mut self, faults: Arc<Injector>) {
        self.faults = faults;
    }

    /// Overrides the persist retry policy.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// The disk directory, if this cache persists.
    pub fn disk_dir(&self) -> Option<&Path> {
        self.disk_dir.as_deref()
    }

    /// The on-disk path for `key` (even if the file does not exist yet).
    pub fn path_for(&self, key: RunKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{}.hpr", key.hex())))
    }

    /// This cache's resilience counters.
    pub fn stats(&self) -> CacheStatsSnapshot {
        CacheStatsSnapshot {
            tmp_swept: self.stats.tmp_swept.load(Ordering::Relaxed),
            records_quarantined: self.stats.records_quarantined.load(Ordering::Relaxed),
            read_errors: self.stats.read_errors.load(Ordering::Relaxed),
            persist_retries: self.stats.persist_retries.load(Ordering::Relaxed),
            persist_failures: self.stats.persist_failures.load(Ordering::Relaxed),
        }
    }

    /// Looks `key` up, reporting which tier served it. Disk records that
    /// fail to decode are quarantined and read as misses.
    pub fn get(&self, key: RunKey) -> Option<(RunReport, CacheTier)> {
        // Clone the Arc inside the lock and the report outside it: warm
        // hits contend only for a refcount bump, not a deep copy.
        let hit = self.memory.lock().unwrap().get(&key.0).map(Arc::clone);
        if let Some(hit) = hit {
            return Some(((*hit).clone(), CacheTier::Memory));
        }
        let path = self.path_for(key)?;

        let mut corrupt_injected = false;
        if let Some(fault) = self.faults.roll(Site::CacheRead) {
            if fault.kind == FaultKind::Corrupt {
                corrupt_injected = true;
            } else {
                self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                self.warn_io(key, "read cache file", &fault.io_error());
                return None;
            }
        }

        let mut bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                self.warn_io(key, "read cache file", &e);
                return None;
            }
        };
        if corrupt_injected {
            if let Some(b) = bytes.first_mut() {
                *b ^= 0x40; // flip a magic bit: decode must reject it
            }
        }
        let decoded =
            heteropipe_obs::profile::time(crate::prof::decode(), || codec::decode(&bytes));
        match decoded {
            Some(report) => {
                self.memory
                    .lock()
                    .unwrap()
                    .insert(key.0, Arc::new(report.clone()));
                // The bytes just read and verified feed the zero-copy
                // tier too: the next byte-level read skips the disk.
                self.bytes.lock().unwrap().insert(key.0, Arc::new(bytes));
                Some((report, CacheTier::Disk))
            }
            None => {
                self.quarantine(key, &path);
                None
            }
        }
    }

    /// Byte-level lookup for the zero-copy warm path: the encoded `.hpr`
    /// record for `key`, *validated* (magic, version, checksum — see
    /// [`codec::validate`]) but never decoded. Serving layers that only
    /// need the raw record — `GET /v1/runs/{key}`, the cluster peer-cache
    /// probe — skip the full field-by-field decode entirely. Records that
    /// fail validation are quarantined exactly like decode failures.
    pub fn get_bytes(&self, key: RunKey) -> Option<(Arc<Vec<u8>>, CacheTier)> {
        if let Some(hit) = self.bytes.lock().unwrap().get(&key.0) {
            return Some((Arc::clone(hit), CacheTier::Memory));
        }
        let path = self.path_for(key)?;

        let mut corrupt_injected = false;
        if let Some(fault) = self.faults.roll(Site::CacheRead) {
            if fault.kind == FaultKind::Corrupt {
                corrupt_injected = true;
            } else {
                self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                self.warn_io(key, "read cache file", &fault.io_error());
                return None;
            }
        }

        let mut bytes = match std::fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
            Err(e) => {
                self.stats.read_errors.fetch_add(1, Ordering::Relaxed);
                self.warn_io(key, "read cache file", &e);
                return None;
            }
        };
        if corrupt_injected {
            if let Some(b) = bytes.first_mut() {
                *b ^= 0x40;
            }
        }
        let ok = heteropipe_obs::profile::time(crate::prof::validate(), || codec::validate(&bytes));
        if ok {
            let arc = Arc::new(bytes);
            self.bytes.lock().unwrap().insert(key.0, Arc::clone(&arc));
            Some((arc, CacheTier::Disk))
        } else {
            self.quarantine(key, &path);
            None
        }
    }

    /// Stores `report` under `key` in both tiers. Transient disk failures
    /// are retried with backoff; a persist that stays broken never
    /// surfaces to the caller — caching is an optimization, never a
    /// correctness requirement — but is counted and logged at warn level
    /// so a silently cold cache is diagnosable.
    pub fn put(&self, key: RunKey, report: &RunReport) {
        self.memory
            .lock()
            .unwrap()
            .insert(key.0, Arc::new(report.clone()));
        let encoded = Arc::new(codec::encode(report));
        self.bytes
            .lock()
            .unwrap()
            .insert(key.0, Arc::clone(&encoded));
        let Some(path) = self.path_for(key) else {
            return;
        };
        let jitter_seed = (key.0 as u64) ^ ((key.0 >> 64) as u64);
        let outcome = with_retries(
            &self.retry,
            jitter_seed,
            |_| self.persist_once(&path, &encoded),
            |attempt, e: &std::io::Error, sleep_ms| {
                self.stats.persist_retries.fetch_add(1, Ordering::Relaxed);
                obs_log::warn(
                    "engine",
                    "cache persist retrying",
                    &[
                        ("run_key", key.hex().into()),
                        ("attempt", u64::from(attempt).into()),
                        ("backoff_ms", sleep_ms.into()),
                        ("error", e.to_string().into()),
                    ],
                );
            },
        );
        if let Err(e) = outcome {
            self.stats.persist_failures.fetch_add(1, Ordering::Relaxed);
            self.warn_io(key, "persist cache file", &e);
        }
    }

    /// One atomic write attempt: temp file in the cache dir, then rename.
    fn persist_once(&self, path: &Path, encoded: &[u8]) -> std::io::Result<()> {
        if let Some(fault) = self.faults.roll(Site::CacheWrite) {
            return Err(fault.io_error());
        }
        let dir = path
            .parent()
            .ok_or_else(|| std::io::Error::other("cache path has no parent"))?;
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".{}.tmp.{}.{}",
            path.file_stem().unwrap_or_default().to_string_lossy(),
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, encoded)?;
        std::fs::rename(&tmp, path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })
    }

    /// Moves a corrupt record into `.quarantine/` so the slot reads as a
    /// miss (the engine re-executes and rewrites it) while the bad bytes
    /// stay around as evidence.
    fn quarantine(&self, key: RunKey, path: &Path) {
        self.stats
            .records_quarantined
            .fetch_add(1, Ordering::Relaxed);
        let moved = path.parent().map(|dir| {
            let qdir = dir.join(QUARANTINE_DIR);
            std::fs::create_dir_all(&qdir)
                .and_then(|()| {
                    let dest = qdir.join(path.file_name().unwrap_or_default());
                    std::fs::rename(path, &dest)
                })
                .is_ok()
        });
        if moved != Some(true) {
            // Could not preserve the evidence; at least clear the slot so
            // the rewrite is not blocked by the corrupt file.
            let _ = std::fs::remove_file(path);
        }
        obs_log::warn(
            "engine",
            "corrupt cache record quarantined",
            &[
                ("run_key", key.hex().into()),
                ("path", path.display().to_string().into()),
                ("preserved", u64::from(moved == Some(true)).into()),
            ],
        );
    }

    fn warn_io(&self, key: RunKey, op: &str, err: &std::io::Error) {
        obs_log::warn(
            "engine",
            "cache io failed",
            &[
                ("run_key", key.hex().into()),
                ("op", op.into()),
                ("error", err.to_string().into()),
            ],
        );
    }

    /// Entries currently held in memory.
    pub fn memory_len(&self) -> usize {
        self.memory.lock().unwrap().len()
    }
}

/// Removes `.*.tmp.*` files a crashed writer left in `dir`, returning how
/// many were swept. A missing directory sweeps nothing. Shared with the
/// sweep journal ([`crate::journal`]), whose intent writes use the same
/// dot-tmp-rename discipline and leave the same orphans on a crash.
pub(crate) fn sweep_stale_tmp(dir: &Path) -> u64 {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return 0;
    };
    let mut swept = 0;
    for entry in entries.flatten() {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with('.')
            && name.contains(".tmp.")
            && entry.path().is_file()
            && std::fs::remove_file(entry.path()).is_ok()
        {
            swept += 1;
        }
    }
    if swept > 0 {
        obs_log::info(
            "engine",
            "swept stale cache temp files",
            &[
                ("dir", dir.display().to_string().into()),
                ("swept", swept.into()),
            ],
        );
    }
    swept
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe::{DirectExecutor, Executor, JobSpec, Organization, SystemConfig};
    use heteropipe_faults::FaultPlan;
    use heteropipe_workloads::{registry, Scale};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "heteropipe-cache-test-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample() -> (RunKey, RunReport) {
        let p = registry::find("rodinia/kmeans")
            .unwrap()
            .pipeline(Scale::TEST)
            .unwrap();
        let cfg = SystemConfig::discrete();
        let spec = JobSpec {
            pipeline: &p,
            config: &cfg,
            organization: Organization::Serial,
            misalignment_sensitive: false,
        };
        (
            crate::key::run_key(&spec),
            DirectExecutor::new().execute(&spec),
        )
    }

    fn injector(plan: &str) -> Arc<Injector> {
        Arc::new(Injector::new(FaultPlan::parse(plan).unwrap()))
    }

    #[test]
    fn memory_round_trip() {
        let (key, report) = sample();
        let cache = ResultCache::in_memory();
        assert!(cache.get(key).is_none());
        cache.put(key, &report);
        let (back, tier) = cache.get(key).unwrap();
        assert_eq!(back, report);
        assert_eq!(tier, CacheTier::Memory);
    }

    #[test]
    fn disk_round_trip_across_instances() {
        let dir = temp_dir("roundtrip");
        let (key, report) = sample();
        ResultCache::on_disk(&dir).put(key, &report);

        // A fresh instance (cold memory) must hit the disk tier.
        let cold = ResultCache::on_disk(&dir);
        let (back, tier) = cold.get(key).unwrap();
        assert_eq!(back, report);
        assert_eq!(tier, CacheTier::Disk);
        // ...and promote to memory.
        assert_eq!(cold.get(key).unwrap().1, CacheTier::Memory);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_disk_entry_is_quarantined_and_misses() {
        let dir = temp_dir("corrupt");
        let (key, report) = sample();
        let cache = ResultCache::on_disk(&dir);
        cache.put(key, &report);

        let path = cache.path_for(key).unwrap();
        std::fs::write(&path, b"not a cache record").unwrap();

        let cold = ResultCache::on_disk(&dir);
        assert!(cold.get(key).is_none(), "corrupt file must read as a miss");
        assert_eq!(cold.stats().records_quarantined, 1);
        let quarantined = dir.join(QUARANTINE_DIR).join(format!("{}.hpr", key.hex()));
        assert!(quarantined.is_file(), "evidence preserved in quarantine");
        assert!(!path.exists(), "slot cleared for the rewrite");

        // Re-putting repairs the file.
        cold.put(key, &report);
        assert_eq!(ResultCache::on_disk(&dir).get(key).unwrap().0, report);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_is_harmless() {
        let dir = temp_dir("absent");
        let cache = ResultCache::on_disk(&dir);
        let (key, _) = sample();
        assert!(cache.get(key).is_none());
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = temp_dir("sweep");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(".deadbeef.tmp.1234.0"), b"torn").unwrap();
        std::fs::write(dir.join(".cafe.tmp.1234.7"), b"torn too").unwrap();
        std::fs::write(dir.join("keep.hpr"), b"a real record slot").unwrap();

        let cache = ResultCache::on_disk(&dir);
        assert_eq!(cache.stats().tmp_swept, 2);
        assert!(!dir.join(".deadbeef.tmp.1234.0").exists());
        assert!(dir.join("keep.hpr").exists(), "non-temp files untouched");

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_faults_are_retried_until_persisted() {
        let dir = temp_dir("retry-write");
        let (key, report) = sample();
        let mut cache = ResultCache::on_disk(&dir);
        // Two straight failures, then success — within the default budget.
        cache.set_faults(injector("cache.write:err=enospc:max=2"));
        cache.put(key, &report);
        let s = cache.stats();
        assert_eq!(s.persist_retries, 2, "both faults retried");
        assert_eq!(s.persist_failures, 0);
        assert_eq!(
            ResultCache::on_disk(&dir).get(key).unwrap().0,
            report,
            "record landed on disk despite the faults"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn exhausted_write_retries_fail_soft() {
        let dir = temp_dir("retry-exhausted");
        let (key, report) = sample();
        let mut cache = ResultCache::on_disk(&dir);
        cache.set_faults(injector("cache.write:err=enospc"));
        cache.set_retry(RetryPolicy {
            attempts: 3,
            base_ms: 0,
            cap_ms: 0,
        });
        cache.put(key, &report);
        let s = cache.stats();
        assert_eq!(s.persist_retries, 2);
        assert_eq!(s.persist_failures, 1);
        // The memory tier still serves it; disk never got the record.
        assert_eq!(cache.get(key).unwrap().1, CacheTier::Memory);
        assert!(ResultCache::on_disk(&dir).get(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_read_fault_is_a_counted_miss() {
        let dir = temp_dir("read-fault");
        let (key, report) = sample();
        ResultCache::on_disk(&dir).put(key, &report);

        let mut cold = ResultCache::on_disk(&dir);
        cold.set_faults(injector("cache.read:err=eio:max=1"));
        assert!(cold.get(key).is_none(), "injected read error is a miss");
        assert_eq!(cold.stats().read_errors, 1);
        // The next read (fault budget spent) succeeds from disk.
        assert_eq!(cold.get(key).unwrap().1, CacheTier::Disk);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_quarantines_and_self_heals() {
        let dir = temp_dir("read-corrupt");
        let (key, report) = sample();
        ResultCache::on_disk(&dir).put(key, &report);

        let mut cold = ResultCache::on_disk(&dir);
        cold.set_faults(injector("cache.read:err=corrupt:max=1"));
        assert!(
            cold.get(key).is_none(),
            "bit-flipped record must not decode"
        );
        assert_eq!(cold.stats().records_quarantined, 1);

        // Self-heal: the caller re-puts (as the engine does on a miss) and
        // the slot serves cleanly again.
        cold.put(key, &report);
        assert_eq!(ResultCache::on_disk(&dir).get(key).unwrap().0, report);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
