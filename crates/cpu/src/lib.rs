//! # heteropipe-cpu
//!
//! Timing model of the study's CPU cores (Table I: four 4-wide out-of-order
//! x86 cores at 3.5 GHz, 14 GFLOP/s peak each).
//!
//! The model is *bounds-based* at pipeline-stage granularity, which is the
//! granularity the paper's analysis operates at: a CPU stage's intrinsic
//! execution time is the maximum of
//!
//! 1. an **issue bound** — instructions over issue width,
//! 2. a **compute bound** — floating-point operations over peak FLOP rate,
//! 3. a **latency bound** — the serialized portion of memory access latency
//!    that out-of-order execution cannot hide, divided by the core's memory
//!    level parallelism (MLP).
//!
//! CPU cores are latency-sensitive (few outstanding misses), which is why
//! the paper finds that shifting CPU accesses from off-chip to cache hits
//! speeds CPU stages nearly proportionally (kmeans' consumer stage gets
//! 2.6x faster once producer data is found in cache). The off-chip
//! *bandwidth* bound is applied outside this crate by the system runner's
//! fluid network, so concurrent stages share memory bandwidth fairly.

#![warn(missing_docs)]

use heteropipe_sim::{ClockDomain, Ps};

/// Tallies of serviced memory accesses for one stage execution, by service
/// level, as produced by driving the stage's access stream through a
/// `heteropipe-mem` hierarchy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Hits in the requester's L1.
    pub l1_hits: u64,
    /// Hits in the requester-side L2.
    pub l2_hits: u64,
    /// Coherent cache-to-cache services from the other side.
    pub remote_hits: u64,
    /// Off-chip fetches.
    pub offchip: u64,
    /// Dirty off-chip writebacks displaced by this stage.
    pub writebacks: u64,
}

impl LevelCounts {
    /// Total line accesses issued by the component.
    pub fn accesses(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.remote_hits + self.offchip
    }

    /// Total off-chip transactions (fetches plus writebacks).
    pub fn offchip_transactions(&self) -> u64 {
        self.offchip + self.writebacks
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &LevelCounts) {
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.remote_hits += other.remote_hits;
        self.offchip += other.offchip;
        self.writebacks += other.writebacks;
    }
}

/// Work performed by one stage execution: instruction and FLOP totals plus
/// the memory service-level tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageWork {
    /// Dynamic instructions executed.
    pub instructions: u64,
    /// Floating-point operations executed.
    pub flops: u64,
    /// Memory accesses by service level.
    pub mem: LevelCounts,
    /// Degree of software thread parallelism available in the stage (1 for
    /// the study's serial CPU control/reduction code).
    pub threads: u64,
    /// Fraction of SIMT lanes doing useful work (1.0 = fully converged;
    /// irregular gathers diverge). Ignored by the CPU model; the GPU model
    /// derates its issue and FLOP rates by it. A `Default`-constructed
    /// `StageWork` has 0.0 here — construct via the runner or set it
    /// explicitly.
    pub simd_efficiency: f64,
}

/// Configuration of the CPU cores.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuConfig {
    /// Number of cores (Table I: 4).
    pub cores: u8,
    /// Core clock.
    pub clock: ClockDomain,
    /// Sustained IPC for non-memory work on one core (4-wide OoO issues at
    /// most 4; dependent scalar code sustains less — we charge issue width
    /// and let the latency bound dominate memory-heavy code).
    pub issue_width: f64,
    /// Peak FLOPs per core per second (Table I: 14 GFLOP/s).
    pub peak_flops_per_core: f64,
    /// Outstanding off-chip misses one core overlaps (MSHR-limited MLP).
    pub mlp: f64,
    /// L2 hit latency in core cycles.
    pub l2_hit_cycles: f64,
    /// Remote (cache-to-cache) hit latency in core cycles.
    pub remote_hit_cycles: f64,
    /// Off-chip access latency in core cycles.
    pub offchip_cycles: f64,
    /// Host-side latency to launch a GPU kernel (enters `C_serial`).
    pub kernel_launch: Ps,
}

impl CpuConfig {
    /// Table I CPU parameters.
    pub fn paper() -> Self {
        CpuConfig {
            cores: 4,
            clock: ClockDomain::from_ghz(3.5),
            issue_width: 4.0,
            peak_flops_per_core: 14.0e9,
            mlp: 4.0,
            l2_hit_cycles: 14.0,
            remote_hit_cycles: 90.0,
            offchip_cycles: 220.0,
            kernel_launch: Ps::from_micros(8),
        }
    }

    /// Aggregate peak FLOP rate across all cores (the `F_cpu` of the
    /// paper's Eq. 2).
    pub fn peak_flops_total(&self) -> f64 {
        self.cores as f64 * self.peak_flops_per_core
    }

    /// A copy with a different MLP (for the sensitivity ablation).
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "MLP must be at least 1");
        self.mlp = mlp;
        self
    }
}

/// The CPU timing model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuModel {
    config: CpuConfig,
}

impl CpuModel {
    /// Creates a model over `config`.
    pub fn new(config: CpuConfig) -> Self {
        CpuModel { config }
    }

    /// The configuration.
    pub fn config(&self) -> &CpuConfig {
        &self.config
    }

    /// Intrinsic (contention-free) execution time of a stage on the CPU.
    ///
    /// Uses as many cores as the stage has threads (capped at the core
    /// count); the study's CPU stages are almost always single-threaded.
    pub fn stage_time(&self, work: &StageWork) -> Ps {
        let c = &self.config;
        let cores_used = work.threads.clamp(1, c.cores as u64) as f64;
        let issue_cycles = work.instructions as f64 / c.issue_width / cores_used;
        let flop_secs = work.flops as f64 / (c.peak_flops_per_core * cores_used);
        let latency_cycles = (work.mem.l2_hits as f64 * c.l2_hit_cycles
            + work.mem.remote_hits as f64 * c.remote_hit_cycles
            + work.mem.offchip as f64 * c.offchip_cycles)
            / c.mlp
            / cores_used;
        let cycle_bound = issue_cycles + latency_cycles;
        let secs = (cycle_bound / c.clock.freq_hz()).max(flop_secs);
        Ps::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CpuModel {
        CpuModel::new(CpuConfig::paper())
    }

    fn pure_compute(instrs: u64, flops: u64) -> StageWork {
        StageWork {
            instructions: instrs,
            flops,
            mem: LevelCounts::default(),
            threads: 1,
            simd_efficiency: 1.0,
        }
    }

    #[test]
    fn paper_config_totals() {
        let c = CpuConfig::paper();
        assert_eq!(c.cores, 4);
        assert!((c.peak_flops_total() - 56.0e9).abs() < 1.0);
        assert!((c.clock.freq_hz() - 3.5e9).abs() < 1.0);
    }

    #[test]
    fn issue_bound_scales_with_instructions() {
        let m = model();
        let t1 = m.stage_time(&pure_compute(1_000_000, 0));
        let t2 = m.stage_time(&pure_compute(2_000_000, 0));
        let ratio = t2.as_secs_f64() / t1.as_secs_f64();
        assert!((ratio - 2.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    fn flop_bound_binds_dense_kernels() {
        let m = model();
        // 1e9 FLOPs and almost no instructions: bound by 14 GFLOP/s.
        let w = pure_compute(1_000, 1_000_000_000);
        let t = m.stage_time(&w);
        assert!((t.as_secs_f64() - 1.0 / 14.0).abs() < 1e-3, "{t}");
    }

    #[test]
    fn offchip_misses_dominate_memory_heavy_stages() {
        let m = model();
        let mut w = pure_compute(1_000, 0);
        w.mem.offchip = 100_000;
        let t = m.stage_time(&w);
        // 100k misses * 220 cycles / MLP 4 = 5.5M cycles at 3.5 GHz,
        // plus the tiny issue term.
        let expect = (100_000.0 * 220.0 / 4.0 + 250.0) / 3.5e9;
        assert!((t.as_secs_f64() - expect).abs() / expect < 0.01, "{t}");
    }

    #[test]
    fn cache_hits_are_much_cheaper_than_misses() {
        let m = model();
        let mut hit_work = pure_compute(10_000, 0);
        hit_work.mem.l1_hits = 100_000;
        let mut miss_work = pure_compute(10_000, 0);
        miss_work.mem.offchip = 100_000;
        let speedup =
            m.stage_time(&miss_work).as_secs_f64() / m.stage_time(&hit_work).as_secs_f64();
        // The kmeans case study's CPU consumer sped up 2.6x from caching;
        // the model must allow at least that headroom.
        assert!(speedup > 2.6, "hit/miss speedup only {speedup}");
    }

    #[test]
    fn remote_hits_cheaper_than_offchip() {
        let m = model();
        let mut remote = pure_compute(0, 0);
        remote.mem.remote_hits = 50_000;
        let mut off = pure_compute(0, 0);
        off.mem.offchip = 50_000;
        assert!(m.stage_time(&remote) < m.stage_time(&off));
    }

    #[test]
    fn multithreaded_stage_uses_multiple_cores() {
        let m = model();
        let mut w = pure_compute(4_000_000, 0);
        let t1 = m.stage_time(&w);
        w.threads = 4;
        let t4 = m.stage_time(&w);
        let ratio = t1.as_secs_f64() / t4.as_secs_f64();
        assert!((ratio - 4.0).abs() < 0.05, "ratio {ratio}");
        // More threads than cores do not help further.
        w.threads = 64;
        assert_eq!(m.stage_time(&w), t4);
    }

    #[test]
    fn higher_mlp_shortens_memory_stages() {
        let base = CpuConfig::paper();
        let mut w = pure_compute(0, 0);
        w.mem.offchip = 10_000;
        let slow = CpuModel::new(base.with_mlp(1.0)).stage_time(&w);
        let fast = CpuModel::new(base.with_mlp(8.0)).stage_time(&w);
        let ratio = slow.as_secs_f64() / fast.as_secs_f64();
        assert!((ratio - 8.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn level_counts_arithmetic() {
        let mut a = LevelCounts {
            l1_hits: 1,
            l2_hits: 2,
            remote_hits: 3,
            offchip: 4,
            writebacks: 5,
        };
        assert_eq!(a.accesses(), 10);
        assert_eq!(a.offchip_transactions(), 9);
        let b = a;
        a.merge(&b);
        assert_eq!(a.accesses(), 20);
        assert_eq!(a.writebacks, 10);
    }

    #[test]
    fn empty_stage_takes_no_time() {
        assert_eq!(model().stage_time(&StageWork::default()), Ps::ZERO);
    }
}
