//! Rodinia workload models.
//!
//! Rodinia spans image/signal processing, machine learning, scientific
//! numerics, and a few graph kernels. Its Table II row (22 benchmarks, 19
//! with P-C communication, 18 pipeline-parallelizable, 6 irregular, no
//! software queues) makes it the largest suite in the study, and it hosts
//! the paper's case study (kmeans) and its page-fault outlier (srad).

use crate::builder::{PipelineBuilder, Scale};
use crate::common::{convergence_check, flag_buffer, CsrGraph};
use crate::ir::{CopyDir, Pipeline};
use crate::meta::{BenchMeta, Suite};
use crate::patterns::Pattern;
use crate::registry::Workload;

#[allow(clippy::too_many_arguments)]
fn meta(
    name: &'static str,
    pc: bool,
    par: bool,
    reg: bool,
    irr: bool,
    examined: bool,
    misaligned: bool,
) -> BenchMeta {
    BenchMeta {
        suite: Suite::Rodinia,
        name,
        pc_comm: pc,
        pipe_parallel: par,
        regular: reg,
        irregular: irr,
        sw_queue: false,
        examined,
        misalignment_sensitive: misaligned,
    }
}

/// rodinia/backprop — two-layer neural network training: a wide forward
/// kernel, a CPU reduction of partial sums, and a weight-adjust kernel. The
/// canonical regular producer-consumer pipeline the paper uses to validate
/// the component-overlap model.
pub fn backprop(scale: Scale) -> Pipeline {
    let n = scale.n(1 << 20);
    let hidden = 16u64;
    let mut b = PipelineBuilder::new("rodinia/backprop");
    let input = b.host("input_units", n * 4);
    let weights = b.host("weights", n * hidden * 4 / 4); // hidden/4 dense blocks
    let partial = b.result("partial_sums", n / 4);
    b.h2d(input);
    b.h2d(weights);
    b.gpu("layerforward", n, 120.0, 5.0 * hidden as f64)
        .cta(256, 2 * 1024)
        .reads(input, Pattern::Stream { passes: 1 })
        .reads(weights, Pattern::Stream { passes: 1 })
        .writes(partial, Pattern::Stream { passes: 1 });
    b.d2h(partial);
    b.cpu("reduce_hidden", n / 64, 10.0, 4.0)
        .reads(partial, Pattern::Stream { passes: 1 });
    b.gpu("adjust_weights", n, 96.0, 4.0 * hidden as f64)
        .reads(input, Pattern::Stream { passes: 1 })
        .writes(weights, Pattern::Stream { passes: 1 });
    b.d2h(weights);
    b.build()
}

/// rodinia/bfs — frontier-mask BFS with the outer-loop copy/check structure
/// the paper names when discussing copy-latency overheads.
pub fn bfs(scale: Scale) -> Pipeline {
    let n = scale.n(256 * 1024);
    let mut b = PipelineBuilder::new("rodinia/bfs");
    let g = CsrGraph::declare(&mut b, n, 6.0, false);
    let mask = b.host("frontier_mask", n * 4);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(mask);
    b.h2d(flag);
    for (round, active) in [0.03, 0.18, 0.5, 0.75, 0.45, 0.15, 0.05].iter().enumerate() {
        let k = b.gpu(&format!("kernel1_{round}"), n, 16.0, 0.0);
        g.attach_traversal(k, *active)
            .reads(mask, Pattern::Stream { passes: 1 });
        b.gpu(&format!("kernel2_{round}"), n, 8.0, 0.0)
            .reads(mask, Pattern::Stream { passes: 1 })
            .writes(mask, Pattern::SparseSweep { fraction: *active })
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(g.props);
    b.build()
}

/// rodinia/cell — cellular-grid simulation: stencil kernels with a small
/// per-iteration statistics copy and CPU parameter update (one of the
/// paper's async-streams beneficiaries).
pub fn cell(scale: Scale) -> Pipeline {
    let cells = scale.n(1 << 21);
    let mut b = PipelineBuilder::new("rodinia/cell");
    let grid_a = b.host("grid.a", cells * 4);
    let grid_b = b.host("grid.b", cells * 4);
    let stats = b.result("stats", 4096);
    b.h2d(grid_a);
    b.h2d(grid_b);
    for iter in 0..8u32 {
        let (s, d) = if iter % 2 == 0 {
            (grid_a, grid_b)
        } else {
            (grid_b, grid_a)
        };
        b.gpu(&format!("step_{iter}"), cells, 60.0, 32.0)
            .reads(s, Pattern::Stencil { row_elems: 1024 })
            .writes(d, Pattern::Stream { passes: 1 })
            .writes_all(stats, Pattern::Point { count: 32 });
        b.d2h(stats);
        b.cpu(&format!("params_{iter}"), 512, 10.0, 4.0)
            .serial()
            .reads(stats, Pattern::Point { count: 32 });
    }
    b.d2h(grid_a);
    b.build()
}

/// rodinia/cfd — unstructured-mesh Euler solver: irregular flux gathers
/// over mesh neighbours, GPU-resident between iterations.
pub fn cfd(scale: Scale) -> Pipeline {
    let n = scale.n(192 * 1024);
    let mut b = PipelineBuilder::new("rodinia/cfd");
    let areas = b.host("areas", n * 4);
    let neighbors = b.host("elem_neighbors", n * 16);
    let vars = b.host_elems("variables", n * 20, 20);
    let fluxes = b.gpu_temp("fluxes", n * 20);
    b.h2d(areas);
    b.h2d(neighbors);
    b.h2d(vars);
    for iter in 0..3u32 {
        b.gpu(&format!("compute_flux_{iter}"), n, 80.0, 60.0)
            .reads(neighbors, Pattern::Stream { passes: 1 })
            .reads_all(
                vars,
                Pattern::Gather {
                    count: n * 4,
                    region: 1.0,
                },
            )
            .reads(areas, Pattern::Stream { passes: 1 })
            .writes(fluxes, Pattern::Stream { passes: 1 });
        b.gpu(&format!("time_step_{iter}"), n, 24.0, 20.0)
            .reads(fluxes, Pattern::Stream { passes: 1 })
            .writes(vars, Pattern::Stream { passes: 1 });
    }
    b.d2h(vars);
    b.build()
}

/// rodinia/dwt — 2D discrete wavelet transform. The CPU packs and unpacks
/// pixel planes around the GPU transform; its dominant CPU time makes dwt
/// the paper's flagship migrated-compute case (Fig. 8).
pub fn dwt(scale: Scale) -> Pipeline {
    let pixels = scale.n(4 * 1024 * 1024);
    let mut b = PipelineBuilder::new("rodinia/dwt");
    let raw = b.host("image.raw", pixels * 4);
    let packed = b.host("image.packed", pixels * 4);
    let coeffs = b.result("coefficients", pixels * 4);
    // Heavy serial CPU repack before the GPU ever starts.
    b.cpu("pack_components", pixels, 14.0, 2.0)
        .reads(raw, Pattern::Stream { passes: 1 })
        .writes(packed, Pattern::Stream { passes: 1 });
    b.h2d(packed);
    b.gpu("dwt_rows", pixels / 2, 26.0, 14.0)
        .reads(packed, Pattern::Stream { passes: 1 })
        .writes(coeffs, Pattern::Stream { passes: 1 });
    b.gpu("dwt_cols", pixels / 2, 26.0, 14.0)
        .reads(coeffs, Pattern::Strided { stride: 16 })
        .writes(coeffs, Pattern::Strided { stride: 16 });
    b.d2h(coeffs);
    b.cpu("unpack_store", pixels, 12.0, 0.0)
        .reads(coeffs, Pattern::Stream { passes: 1 })
        .writes(raw, Pattern::Stream { passes: 1 });
    b.build()
}

/// rodinia/gaussian — Gaussian elimination: a pair of kernels per pivot row
/// over a shrinking trailing submatrix (the paper's example of iterative
/// refinement keeping copies a small fraction of accesses).
pub fn gaussian(scale: Scale) -> Pipeline {
    let dim = scale.dim(1400);
    let mut b = PipelineBuilder::new("rodinia/gaussian");
    let matrix = b.host("matrix", dim * dim * 4);
    let vec = b.host("rhs", dim * 4);
    b.h2d(matrix);
    b.h2d(vec);
    let steps = scale.small(20).max(8);
    for s in 0..steps {
        let remaining = 1.0 - s as f64 / steps as f64;
        b.gpu(&format!("fan1_{s}"), dim, 10.0, 4.0)
            .reads(
                matrix,
                Pattern::SparseSweep {
                    fraction: 0.02 * remaining,
                },
            )
            .writes(vec, Pattern::Point { count: dim / 8 });
        b.gpu(
            &format!("fan2_{s}"),
            (dim * dim / steps).max(4096),
            64.0,
            40.0,
        )
        .reads(
            matrix,
            Pattern::SparseSweep {
                fraction: remaining * 0.5,
            },
        )
        .writes(
            matrix,
            Pattern::SparseSweep {
                fraction: remaining * 0.45,
            },
        );
    }
    b.d2h(matrix);
    b.d2h(vec);
    b.build()
}

/// rodinia/heartwall — ultrasound cardiac-wall tracking: per-frame image
/// transfers the elimination pass cannot remove, plus large GPU-temporary
/// convolution state that page-faults on first touch in the heterogeneous
/// processor (one of the paper's three fault-slowdown benchmarks).
pub fn heartwall(scale: Scale) -> Pipeline {
    let frame_px = scale.n(640 * 1024);
    let mut b = PipelineBuilder::new("rodinia/heartwall");
    let frame = b.host("frame", frame_px * 4);
    let temp = b.gpu_temp("conv_state", frame_px * 4);
    let points = b.result("track_points", 64 * 1024);
    let frames = scale.small(5).max(3);
    for f in 0..frames {
        // A fresh frame arrives each step: the copy is fundamental.
        b.sticky_copy(frame, CopyDir::H2D, None);
        b.gpu(&format!("track_{f}"), frame_px / 4, 70.0, 40.0)
            .cta(256, 12 * 1024)
            .reads(frame, Pattern::Stream { passes: 1 })
            .reads_all(
                frame,
                Pattern::Gather {
                    count: frame_px / 2,
                    region: 0.3,
                },
            )
            .writes_all(
                temp,
                Pattern::Gather {
                    count: frame_px / 2,
                    region: 1.0,
                },
            )
            .writes_all(points, Pattern::Point { count: 2048 });
        b.d2h(points);
        b.cpu(&format!("update_{f}"), 4096, 16.0, 6.0)
            .serial()
            .reads(points, Pattern::Point { count: 2048 });
    }
    b.build()
}

/// rodinia/hotspot — thermal stencil with pyramid blocking; regular,
/// chunkable, and misalignment-sensitive when its grids are shared.
pub fn hotspot(scale: Scale) -> Pipeline {
    let cells = scale.n(2 * 1024 * 1024);
    let mut b = PipelineBuilder::new("rodinia/hotspot");
    let temp = b.host("temperature", cells * 4);
    let power = b.host("power", cells * 4);
    let out = b.host("temp_out", cells * 4);
    b.h2d(temp);
    b.h2d(power);
    for iter in 0..8u32 {
        let (s, d) = if iter % 2 == 0 {
            (temp, out)
        } else {
            (out, temp)
        };
        b.gpu(&format!("hotspot_{iter}"), cells, 66.0, 36.0)
            .cta(256, 8 * 1024)
            .reads(s, Pattern::Stencil { row_elems: 1024 })
            .reads(power, Pattern::Stream { passes: 1 })
            .writes(d, Pattern::Stream { passes: 1 });
    }
    b.d2h(out);
    b.build()
}

/// rodinia/kmeans — the paper's case study (§II, Fig. 3). Each sweep
/// iteration re-mirrors the feature array to the GPU (the Rodinia harness
/// re-invokes clustering per candidate k), runs the wide distance/assign
/// kernel, copies memberships back, and recomputes centers on the CPU from
/// the points whose assignment changed.
pub fn kmeans(scale: Scale) -> Pipeline {
    let n = scale.n(256 * 1024);
    let dims = 32u64;
    let k = 16u64;
    let mut b = PipelineBuilder::new("rodinia/kmeans");
    b.work_scale(1.0); // costs calibrated directly against Fig. 3
    let features = b.host_elems("features", n * dims * 4, (dims * 4) as u32);
    let membership = b.result("membership", n * 4);
    // Per-point partial distance sums, produced on the GPU and consumed by
    // the CPU recenter step: the producer-consumer data whose cache
    // residency drives the case study's "Parallel + Cache" gain.
    let partial = b.result("partial_sums", n * 4);
    // Centers are double-buffered (kernels read this iteration's centers
    // while the CPU accumulates next iteration's), as any chunk-overlapped
    // implementation must to break the write-after-read hazard.
    let centers_a = b.host("centers.a", (k * dims * 4).max(128));
    let centers_b = b.host("centers.b", (k * dims * 4).max(128));
    let iters = scale.small(4).max(3);
    for it in 0..iters {
        let (cur, next) = if it % 2 == 0 {
            (centers_a, centers_b)
        } else {
            (centers_b, centers_a)
        };
        // The Rodinia harness re-invokes clustering per candidate k,
        // copying the feature array afresh each time: the bandwidth
        // asymmetry makes this >50% of baseline run time.
        b.h2d(features);
        b.h2d(cur);
        b.gpu(
            &format!("distance_assign_{it}"),
            n,
            5.5 * (k * dims) as f64,
            4.5 * (k * dims) as f64,
        )
        .cta(256, 0)
        .reads(features, Pattern::Stream { passes: 1 })
        .reads_all(cur, Pattern::Stream { passes: 4 })
        .writes(membership, Pattern::Stream { passes: 1 })
        .writes(partial, Pattern::Stream { passes: 1 });
        b.d2h(membership);
        b.d2h(partial);
        // The recenter accumulation is chunkable (per-cluster partial
        // sums), which is what lets the paper's "Parallel" organizations
        // overlap it with the kernel.
        b.cpu(&format!("recenter_{it}"), n, 36.0, 6.0)
            .reads(membership, Pattern::Stream { passes: 1 })
            .reads(partial, Pattern::Stream { passes: 1 })
            .writes(next, Pattern::Stream { passes: 1 });
    }
    b.build()
}

/// rodinia/lud — blocked LU decomposition: three kernels of very different
/// width per diagonal step, all GPU-resident (iterative refinement, few
/// copies).
pub fn lud(scale: Scale) -> Pipeline {
    let dim = scale.dim(1400);
    let mut b = PipelineBuilder::new("rodinia/lud");
    let matrix = b.host("matrix", dim * dim * 4);
    b.h2d(matrix);
    let steps = scale.small(10).max(6);
    for s in 0..steps {
        let remaining = (1.0 - s as f64 / steps as f64).max(0.05);
        b.gpu(&format!("diag_{s}"), 4096, 60.0, 40.0)
            .cta(64, 4 * 1024)
            .reads(matrix, Pattern::SparseSweep { fraction: 0.01 })
            .writes(matrix, Pattern::SparseSweep { fraction: 0.005 });
        b.gpu(&format!("perimeter_{s}"), (dim * 8).max(4096), 120.0, 80.0)
            .cta(128, 8 * 1024)
            .reads(
                matrix,
                Pattern::SparseSweep {
                    fraction: 0.08 * remaining,
                },
            )
            .writes(
                matrix,
                Pattern::SparseSweep {
                    fraction: 0.04 * remaining,
                },
            );
        b.gpu(
            &format!("internal_{s}"),
            ((dim * dim) as f64 * remaining * remaining / 4.0) as u64 + 4096,
            130.0,
            90.0,
        )
        .cta(256, 8 * 1024)
        .reads(
            matrix,
            Pattern::SparseSweep {
                fraction: remaining * remaining,
            },
        )
        .reads(
            matrix,
            Pattern::SparseSweep {
                fraction: remaining * remaining * 0.8,
            },
        )
        .writes(
            matrix,
            Pattern::SparseSweep {
                fraction: remaining * remaining * 0.9,
            },
        );
    }
    b.d2h(matrix);
    b.build()
}

/// rodinia/mummer — MUMmer suffix-tree DNA matching: irregular tree
/// descent on the GPU bracketed by heavy serial CPU pre/post-processing
/// (the paper notes mummer even overlaps disk input with GPU execution).
pub fn mummer(scale: Scale) -> Pipeline {
    let queries = scale.n(512 * 1024);
    let tree_bytes = scale.n(1 << 22) * 4;
    let mut b = PipelineBuilder::new("rodinia/mummer");
    let tree = b.host("suffix_tree", tree_bytes);
    let qbuf = b.host("queries", queries * 4);
    let matches = b.result("matches", queries * 8);
    b.cpu("parse_queries", queries, 18.0, 0.0)
        .reads(qbuf, Pattern::Stream { passes: 1 })
        .writes(qbuf, Pattern::Stream { passes: 1 });
    b.h2d(tree);
    b.h2d(qbuf);
    b.gpu("match_kernel", queries, 90.0, 4.0)
        .reads(qbuf, Pattern::Stream { passes: 1 })
        .reads_all(
            tree,
            Pattern::Gather {
                count: queries * 6,
                region: 0.6,
            },
        )
        .writes(matches, Pattern::Stream { passes: 1 });
    b.d2h(matches);
    b.cpu("print_matches", queries, 26.0, 0.0)
        .reads(matches, Pattern::Stream { passes: 1 });
    b.build()
}

/// rodinia/nn — nearest neighbours: one streaming distance kernel plus a
/// CPU top-k scan (no multi-stage P-C communication in Table II terms).
pub fn nn(scale: Scale) -> Pipeline {
    let records = scale.n(2 * 1024 * 1024);
    let mut b = PipelineBuilder::new("rodinia/nn");
    let recs = b.host_elems("records", records * 8, 8);
    let dists = b.result("distances", records * 4);
    b.h2d(recs);
    b.gpu("distances", records, 12.0, 8.0)
        .reads(recs, Pattern::Stream { passes: 1 })
        .writes(dists, Pattern::Stream { passes: 1 });
    b.d2h(dists);
    b.cpu("topk", records, 6.0, 1.0)
        .serial()
        .reads(dists, Pattern::Stream { passes: 1 });
    b.build()
}

/// rodinia/nw — Needleman-Wunsch: anti-diagonal wavefront kernels over a
/// shared DP matrix; many-to-few dependencies make inter-stage optimization
/// hard in the presence of copies (paper §V-B).
pub fn nw(scale: Scale) -> Pipeline {
    let dim = scale.dim(2048);
    let mut b = PipelineBuilder::new("rodinia/nw");
    let matrix = b.host("dp_matrix", dim * dim * 4);
    let reference = b.host("reference", dim * dim * 4);
    b.h2d(matrix);
    b.h2d(reference);
    let diags = scale.small(12).max(8);
    for d in 0..diags {
        let frac = 1.0 / diags as f64;
        b.gpu(
            &format!("diag_fwd_{d}"),
            (dim * dim / diags / 4).max(4096),
            90.0,
            30.0,
        )
        .cta(64, 8 * 1024)
        .serial() // wavefront dependency
        .reads(
            matrix,
            Pattern::SparseSweep {
                fraction: frac * 2.0,
            },
        )
        .reads(reference, Pattern::SparseSweep { fraction: frac })
        .writes(matrix, Pattern::SparseSweep { fraction: frac });
    }
    b.d2h(matrix);
    b.build()
}

/// rodinia/pathfinder — dynamic programming over grid rows, one small
/// kernel per row step; cited by the paper as a benchmark whose copy time
/// vanishes in the heterogeneous processor.
pub fn pathfinder(scale: Scale) -> Pipeline {
    let cols = scale.n(1 << 21);
    let rows = scale.small(8).max(6);
    let mut b = PipelineBuilder::new("rodinia/pathfinder");
    let wall = b.host("wall", cols * rows * 4);
    let result = b.host("result_row", cols * 4);
    b.h2d(wall);
    b.h2d(result);
    for r in 0..rows {
        b.gpu(&format!("dynproc_{r}"), cols, 44.0, 14.0)
            .cta(256, 2 * 1024)
            .reads(
                wall,
                Pattern::SparseSweep {
                    fraction: 1.0 / rows as f64,
                },
            )
            .reads(result, Pattern::Stream { passes: 1 })
            .writes(result, Pattern::Stream { passes: 1 });
    }
    b.d2h(result);
    b.build()
}

/// Particle-filter skeleton shared by the naive and float variants.
fn particlefilter(name: &'static str, float_variant: bool, scale: Scale) -> Pipeline {
    let particles = scale.n(96 * 1024);
    let frame_px = scale.n(512 * 1024);
    let mut b = PipelineBuilder::new(&format!("rodinia/{name}"));
    let frame = b.host("frame", frame_px * 4);
    let xs = b.host("particles.x", particles * 8);
    let weights = b.host("weights", particles * 8);
    // The float variant keeps large intermediate arrays on the GPU, which
    // page-fault on first touch in the heterogeneous processor.
    let scratch = float_variant.then(|| b.gpu_temp("pf_scratch", particles * 32));
    b.h2d(frame);
    let frames = scale.small(4).max(3);
    for f in 0..frames {
        b.cpu(&format!("propose_{f}"), particles, 20.0, 10.0)
            .reads(xs, Pattern::Stream { passes: 1 })
            .writes(xs, Pattern::Stream { passes: 1 });
        b.h2d(xs);
        let k = b
            .gpu(&format!("likelihood_{f}"), particles, 60.0, 30.0)
            .reads(xs, Pattern::Stream { passes: 1 })
            .reads_all(
                frame,
                Pattern::Gather {
                    count: particles * 4,
                    region: 0.5,
                },
            )
            .writes(weights, Pattern::Stream { passes: 1 });
        if let Some(s) = scratch {
            k.writes(s, Pattern::Stream { passes: 1 });
        }
        b.d2h(weights);
        b.cpu(&format!("resample_{f}"), particles, 26.0, 8.0)
            .serial()
            .reads(weights, Pattern::Stream { passes: 1 })
            .writes(xs, Pattern::Stream { passes: 1 });
    }
    b.build()
}

/// rodinia/pf_naive — particle filter, scalar kernels, CPU resampling.
pub fn pf_naive(scale: Scale) -> Pipeline {
    particlefilter("pf_naive", false, scale)
}

/// rodinia/pf_float — particle filter, float kernels with GPU-resident
/// intermediates (the paper's example of page-fault serialization *helping*
/// by accident via reduced cache contention).
pub fn pf_float(scale: Scale) -> Pipeline {
    particlefilter("pf_float", true, scale)
}

/// rodinia/srad — speckle-reducing anisotropic diffusion. Each iteration's
/// srad1 kernel writes four derivative images plus a coefficient image that
/// exist only on the GPU — at first touch the heterogeneous processor takes
/// a page fault per 4 KiB, and the CPU handler clears each page, shifting
/// accesses from GPU to CPU exactly as the paper reports (7x fault
/// slowdown).
pub fn srad(scale: Scale) -> Pipeline {
    let px = scale.n(1 << 21);
    let mut b = PipelineBuilder::new("rodinia/srad");
    let image = b.host("image", px * 4);
    let dn = b.gpu_temp("deriv.n", px * 4);
    let ds = b.gpu_temp("deriv.s", px * 4);
    let de = b.gpu_temp("deriv.e", px * 4);
    let dw = b.gpu_temp("deriv.w", px * 4);
    let coef = b.gpu_temp("coefficient", px * 4);
    let stats = b.result("roi_stats", 4096);
    b.h2d(image);
    for it in 0..2u32 {
        b.cpu(&format!("roi_stats_{it}"), 4096, 12.0, 6.0)
            .serial()
            .reads(stats, Pattern::Point { count: 64 });
        b.gpu(&format!("srad1_{it}"), px, 30.0, 18.0)
            .reads(image, Pattern::Stencil { row_elems: 1024 })
            .writes(dn, Pattern::Stream { passes: 1 })
            .writes(ds, Pattern::Stream { passes: 1 })
            .writes(de, Pattern::Stream { passes: 1 })
            .writes(dw, Pattern::Stream { passes: 1 })
            .writes(coef, Pattern::Stream { passes: 1 });
        b.gpu(&format!("srad2_{it}"), px, 26.0, 14.0)
            .reads(coef, Pattern::Stencil { row_elems: 1024 })
            .reads(dn, Pattern::Stream { passes: 1 })
            .reads(ds, Pattern::Stream { passes: 1 })
            .reads(de, Pattern::Stream { passes: 1 })
            .reads(dw, Pattern::Stream { passes: 1 })
            .writes(image, Pattern::Stream { passes: 1 })
            .writes_all(stats, Pattern::Point { count: 64 });
        b.d2h(stats);
    }
    b.d2h(image);
    b.build()
}

/// rodinia/strmclstr — streamcluster: wide GPU distance kernels feeding a
/// serial CPU center-opening decision every iteration; with kmeans and
/// backprop, one of the paper's three overlap-model validation benchmarks.
pub fn strmclstr(scale: Scale) -> Pipeline {
    let points = scale.n(128 * 1024);
    let dims = 32u64;
    let mut b = PipelineBuilder::new("rodinia/strmclstr");
    b.work_scale(1.0); // costs calibrated with the kmeans case study
    let coords = b.host_elems("points", points * dims * 4, (dims * 4) as u32);
    let assign = b.result("assignments", points * 4);
    let costs = b.result("costs", points * 4);
    // Double-buffered center sets (see kmeans).
    let centers_a = b.host("centers.a", 64 * dims * 4);
    let centers_b = b.host("centers.b", 64 * dims * 4);
    let iters = scale.small(5).max(4);
    b.h2d(coords);
    for it in 0..iters {
        let (cur, next) = if it % 2 == 0 {
            (centers_a, centers_b)
        } else {
            (centers_b, centers_a)
        };
        b.h2d(cur);
        b.gpu(
            &format!("pgain_{it}"),
            points,
            24.0 * dims as f64,
            6.0 * dims as f64,
        )
        .reads(coords, Pattern::Stream { passes: 1 })
        .reads_all(cur, Pattern::Stream { passes: 4 })
        .writes(assign, Pattern::Stream { passes: 1 })
        .writes(costs, Pattern::Stream { passes: 1 });
        b.d2h(assign);
        b.d2h(costs);
        b.cpu(&format!("open_center_{it}"), points, 14.0, 4.0)
            .reads(assign, Pattern::Stream { passes: 1 })
            .reads(costs, Pattern::Stream { passes: 1 })
            .writes(next, Pattern::Stream { passes: 1 });
    }
    b.build()
}

/// All 22 Rodinia workloads with their Table II flags.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload::examined(
            meta("backprop", true, true, true, false, true, true),
            backprop,
        ),
        Workload::examined(meta("bfs", true, true, true, true, true, false), bfs),
        Workload::extra(meta("btree", true, false, true, true, false, false), btree),
        Workload::examined(meta("cell", true, true, true, false, true, false), cell),
        Workload::examined(meta("cfd", true, true, true, false, true, false), cfd),
        Workload::examined(meta("dwt", true, true, true, false, true, false), dwt),
        Workload::examined(
            meta("gaussian", true, true, true, false, true, false),
            gaussian,
        ),
        Workload::examined(
            meta("heartwall", true, true, true, false, true, false),
            heartwall,
        ),
        Workload::examined(
            meta("hotspot", true, true, true, false, true, true),
            hotspot,
        ),
        Workload::examined(meta("kmeans", true, true, true, false, true, false), kmeans),
        Workload::extra(
            meta("lavamd", false, false, false, false, false, false),
            lavamd,
        ),
        Workload::extra(
            meta("leukocyte", true, true, true, true, false, false),
            leukocyte,
        ),
        Workload::examined(meta("lud", true, true, true, false, true, false), lud),
        Workload::examined(meta("mummer", true, true, true, true, true, false), mummer),
        Workload::extra(
            meta("myocyte", false, false, false, false, false, false),
            myocyte,
        ),
        Workload::examined(meta("nn", false, false, false, false, true, false), nn),
        Workload::examined(meta("nw", true, true, true, false, true, false), nw),
        Workload::examined(
            meta("pathfinder", true, true, true, false, true, true),
            pathfinder,
        ),
        Workload::examined(
            meta("pf_float", true, true, true, true, true, false),
            pf_float,
        ),
        Workload::examined(
            meta("pf_naive", true, true, true, true, true, false),
            pf_naive,
        ),
        Workload::examined(meta("srad", true, true, true, false, true, false), srad),
        Workload::examined(
            meta("strmclstr", true, true, true, false, true, false),
            strmclstr,
        ),
    ]
}

/// rodinia/btree — B+tree bulk queries: two traversal kernels over a
/// pointer-linked tree. Not examined in the paper (did not run in
/// gem5-gpu); modeled so the full suite is runnable.
pub fn btree(scale: Scale) -> Pipeline {
    let keys = scale.n(1 << 20);
    let queries = scale.n(64 * 1024);
    let mut b = PipelineBuilder::new("rodinia/btree");
    let tree = b.host("tree_nodes", keys * 8);
    let qbuf = b.host("queries", queries * 4);
    let results = b.result("results", queries * 4);
    b.h2d(tree);
    b.h2d(qbuf);
    b.gpu("find_k", queries, 70.0, 2.0)
        .serial() // latch-free traversal order is load-dependent
        .reads(qbuf, Pattern::Stream { passes: 1 })
        .reads_all(
            tree,
            Pattern::Gather {
                count: queries * 5,
                region: 0.5,
            },
        )
        .writes(results, Pattern::Stream { passes: 1 });
    b.d2h(results);
    b.gpu("find_range_k", queries, 90.0, 2.0)
        .serial()
        .reads(qbuf, Pattern::Stream { passes: 1 })
        .reads_all(
            tree,
            Pattern::Gather {
                count: queries * 8,
                region: 0.5,
            },
        )
        .writes(results, Pattern::Stream { passes: 1 });
    b.d2h(results);
    b.build()
}

/// rodinia/lavamd — molecular dynamics over spatial boxes: one
/// compute-dense kernel gathering neighbour-box particles (no P-C
/// communication). Not examined in the paper.
pub fn lavamd(scale: Scale) -> Pipeline {
    let particles = scale.n(128 * 1024);
    let mut b = PipelineBuilder::new("rodinia/lavamd");
    let pos = b.host_elems("particles", particles * 16, 16);
    let forces = b.result("forces", particles * 16);
    b.h2d(pos);
    b.gpu("nbody_boxes", particles, 520.0, 420.0)
        .cta(128, 16 * 1024)
        .reads(pos, Pattern::Stream { passes: 1 })
        .reads_all(
            pos,
            Pattern::Gather {
                count: particles * 3,
                region: 0.1,
            },
        )
        .writes(forces, Pattern::Stream { passes: 1 });
    b.d2h(forces);
    b.build()
}

/// rodinia/leukocyte — white-blood-cell tracking: per-frame GICOV and
/// dilation kernels with a CPU tracking update. Not examined in the paper.
pub fn leukocyte(scale: Scale) -> Pipeline {
    let px = scale.n(1 << 20);
    let mut b = PipelineBuilder::new("rodinia/leukocyte");
    let frame = b.host("frame", px * 4);
    let gicov = b.gpu_temp("gicov", px * 4);
    let dilated = b.result("dilated", px * 4);
    let cells = b.result("cell_state", 128 * 1024);
    let frames = scale.small(4).max(3);
    for f in 0..frames {
        b.sticky_copy(frame, CopyDir::H2D, None);
        b.gpu(&format!("gicov_{f}"), px / 4, 240.0, 180.0)
            .cta(256, 8 * 1024)
            .reads(frame, Pattern::Stencil { row_elems: 1024 })
            .writes(gicov, Pattern::Stream { passes: 1 });
        b.gpu(&format!("dilate_{f}"), px / 4, 90.0, 30.0)
            .reads(gicov, Pattern::Stencil { row_elems: 1024 })
            .writes(dilated, Pattern::Stream { passes: 1 })
            .writes_all(cells, Pattern::Point { count: 4096 });
        b.d2h(cells);
        b.cpu(&format!("track_{f}"), 8192, 20.0, 8.0)
            .serial()
            .reads(cells, Pattern::Point { count: 4096 });
    }
    b.build()
}

/// rodinia/myocyte — cardiac myocyte ODE integration: a long chain of tiny
/// dependent solver steps with almost no data (no P-C communication in
/// Table II terms, and far too serial to profit from a GPU). Not examined
/// in the paper.
pub fn myocyte(scale: Scale) -> Pipeline {
    let steps = scale.small(64).max(16);
    let mut b = PipelineBuilder::new("rodinia/myocyte");
    let state = b.host("ode_state", 512 * 1024);
    b.h2d(state);
    for s in 0..steps {
        b.gpu(&format!("solver_step_{s}"), 4096, 600.0, 420.0)
            .cta(64, 2 * 1024)
            .serial()
            .reads(state, Pattern::Stream { passes: 1 })
            .writes(state, Pattern::Stream { passes: 1 });
    }
    b.d2h(state);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_two_workloads_eighteen_examined() {
        let w = workloads();
        assert_eq!(w.len(), 22);
        assert_eq!(w.iter().filter(|w| w.meta.examined).count(), 18);
    }

    #[test]
    fn table_ii_row_matches_paper() {
        let w = workloads();
        assert_eq!(w.iter().filter(|w| w.meta.pc_comm).count(), 19);
        assert_eq!(w.iter().filter(|w| w.meta.pipe_parallel).count(), 18);
        assert_eq!(w.iter().filter(|w| w.meta.regular).count(), 19);
        assert_eq!(w.iter().filter(|w| w.meta.irregular).count(), 6);
        assert_eq!(w.iter().filter(|w| w.meta.sw_queue).count(), 0);
    }

    #[test]
    fn all_examined_pipelines_validate() {
        for w in workloads() {
            if let Some(p) = w.pipeline(Scale::TEST) {
                assert_eq!(p.validate(), Ok(()), "{}", p.name);
            }
        }
    }

    #[test]
    fn kmeans_recopies_features_each_iteration() {
        let p = kmeans(Scale::TEST);
        let feature_copies = p
            .stages
            .iter()
            .filter_map(|s| s.as_copy())
            .filter(|c| p.buffer(c.buf).name == "features")
            .count();
        assert!(feature_copies >= 3, "got {feature_copies}");
    }

    #[test]
    fn srad_has_five_gpu_temp_planes() {
        let p = srad(Scale::TEST);
        let temps = p.buffers.iter().filter(|b| !b.mirrored).count();
        assert_eq!(temps, 5);
        // Together they exceed the image itself: big fault surface.
        let temp_bytes: u64 = p
            .buffers
            .iter()
            .filter(|b| !b.mirrored)
            .map(|b| b.bytes)
            .sum();
        let image_bytes = p.buffers.iter().find(|b| b.name == "image").unwrap().bytes;
        assert!(temp_bytes >= 5 * image_bytes);
    }

    #[test]
    fn dwt_is_cpu_heavy() {
        let p = dwt(Scale::TEST);
        let cpu_instr: u64 = p
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .filter(|c| c.exec == crate::ir::ExecKind::Cpu)
            .map(|c| c.instructions)
            .sum();
        let gpu_instr: u64 = p
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .filter(|c| c.exec == crate::ir::ExecKind::Gpu)
            .map(|c| c.instructions)
            .sum();
        assert!(cpu_instr > gpu_instr / 2, "dwt should have heavy CPU work");
    }

    #[test]
    fn heartwall_frame_copies_are_sticky() {
        let p = heartwall(Scale::TEST);
        assert!(p.residual_copies() >= 3);
    }

    #[test]
    fn nw_wavefront_is_serial() {
        let p = nw(Scale::TEST);
        assert!(p
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .filter(|c| c.name.starts_with("diag_fwd"))
            .all(|c| !c.chunkable));
    }
}
