//! Pannotia workload models.
//!
//! Pannotia's ten graph-analytics benchmarks are structured to expose all
//! available work without software queues: every vertex is (re)examined each
//! round, with convergence decided by the host. All ten have
//! producer-consumer communication, are pipeline-parallelizable, and mix
//! regular per-vertex sweeps with irregular neighbour gathers (Table II's
//! 10/10/10/10/10/0 row).

use crate::builder::{PipelineBuilder, Scale};
use crate::common::{convergence_check, flag_buffer, CsrGraph};
use crate::ir::Pipeline;
use crate::meta::{BenchMeta, Suite};
use crate::patterns::Pattern;
use crate::registry::Workload;

fn meta(name: &'static str, examined: bool, misaligned: bool) -> BenchMeta {
    BenchMeta {
        suite: Suite::Pannotia,
        name,
        pc_comm: true,
        pipe_parallel: true,
        regular: true,
        irregular: true,
        sw_queue: false,
        examined,
        misalignment_sensitive: misaligned,
    }
}

/// pannotia/bc — betweenness centrality: forward BFS passes followed by
/// backward dependency accumulation, per source sample.
pub fn bc(scale: Scale) -> Pipeline {
    let n = scale.n(128 * 1024);
    let mut b = PipelineBuilder::new("pannotia/bc");
    let g = CsrGraph::declare(&mut b, n, 8.0, false);
    let sigma = b.host("sigma", n * 4);
    let delta = b.host("delta", n * 4);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(sigma);
    b.h2d(delta);
    b.h2d(flag);
    let sources = scale.small(2).max(2);
    for s in 0..sources {
        for round in 0..4u32 {
            let active = [0.1, 0.45, 0.7, 0.3][round as usize];
            let k = b.gpu(&format!("fwd_{s}_{round}"), n, 22.0, 2.0);
            g.attach_traversal(k, active)
                .reads(sigma, Pattern::Stream { passes: 1 })
                .writes(sigma, Pattern::SparseSweep { fraction: active })
                .writes_all(flag, Pattern::Point { count: 1 });
            convergence_check(&mut b, flag, &format!("f{s}_{round}"));
        }
        for round in 0..4u32 {
            let active = [0.3, 0.7, 0.45, 0.1][round as usize];
            let k = b.gpu(&format!("bwd_{s}_{round}"), n, 26.0, 8.0);
            g.attach_traversal(k, active)
                .reads(sigma, Pattern::Stream { passes: 1 })
                .writes(delta, Pattern::SparseSweep { fraction: active });
            convergence_check(&mut b, flag, &format!("b{s}_{round}"));
        }
    }
    b.d2h(delta);
    b.build()
}

/// Shared skeleton for the two graph-coloring variants: rounds of
/// max-independent-set selection and color assignment.
fn color(name: &'static str, extra_ipt: f64, scale: Scale) -> Pipeline {
    let n = scale.n(160 * 1024);
    let mut b = PipelineBuilder::new(&format!("pannotia/{name}"));
    let g = CsrGraph::declare(&mut b, n, 8.0, false);
    let colors = b.host("colors", n * 4);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(colors);
    b.h2d(flag);
    let rounds = scale.small(6).max(4);
    for round in 0..rounds {
        let live = (1.0 - round as f64 / rounds as f64).max(0.1);
        let k = b.gpu(&format!("select_{round}"), n, 20.0 + extra_ipt, 2.0);
        g.attach_traversal(k, live)
            .reads(colors, Pattern::Stream { passes: 1 })
            .writes_all(flag, Pattern::Point { count: 1 });
        b.gpu(&format!("assign_{round}"), n, 8.0, 0.0)
            .reads(g.props, Pattern::Stream { passes: 1 })
            .writes(
                colors,
                Pattern::SparseSweep {
                    fraction: live * 0.5,
                },
            );
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(colors);
    b.build()
}

/// pannotia/color_max — graph coloring by iterated local maxima.
pub fn color_max(scale: Scale) -> Pipeline {
    color("color_max", 0.0, scale)
}

/// pannotia/color_maxmin — coloring two independent sets per round
/// (meta-only in the examined set).
pub fn color_maxmin(scale: Scale) -> Pipeline {
    color("color_maxmin", 10.0, scale)
}

/// Floyd-Warshall skeleton. The dense distance matrix is copied whole, but
/// the blocked traversal touches under a third of it for sparse inputs —
/// the paper's example (with Lonestar bfs) of copies moving far more data
/// than CPU and GPU cores ever touch.
fn fw_impl(name: &'static str, blocked: bool, scale: Scale) -> Pipeline {
    let n = scale.dim(1500); // vertices; matrix is n^2
    let mut b = PipelineBuilder::new(&format!("pannotia/{name}"));
    let dist = b.host("dist_matrix", n * n * 4);
    b.h2d(dist);
    let rounds = scale.small(12).max(6);
    for round in 0..rounds {
        let touched = 0.28;
        let threads = if blocked { n * n / 4 } else { n * n / 2 };
        b.gpu(&format!("relax_{round}"), threads, 70.0, 28.0)
            .cta(
                if blocked { 256 } else { 128 },
                if blocked { 4096 } else { 0 },
            )
            .reads(dist, Pattern::SparseSweep { fraction: touched })
            .writes(
                dist,
                Pattern::SparseSweep {
                    fraction: touched * 0.3,
                },
            );
    }
    b.d2h(dist);
    b.build()
}

/// pannotia/fw — Floyd-Warshall all-pairs shortest paths.
pub fn fw(scale: Scale) -> Pipeline {
    fw_impl("fw", false, scale)
}

/// pannotia/fw_block — tiled Floyd-Warshall using scratch-memory blocks.
pub fn fw_block(scale: Scale) -> Pipeline {
    fw_impl("fw_block", true, scale)
}

/// pannotia/mis — maximal independent set.
pub fn mis(scale: Scale) -> Pipeline {
    let n = scale.n(192 * 1024);
    let mut b = PipelineBuilder::new("pannotia/mis");
    let g = CsrGraph::declare(&mut b, n, 8.0, false);
    let state = b.host("node_state", n * 4);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(state);
    b.h2d(flag);
    let rounds = scale.small(5).max(4);
    for round in 0..rounds {
        let live = (0.8f64).powi(round as i32);
        let k = b.gpu(&format!("select_{round}"), n, 18.0, 2.0);
        g.attach_traversal(k, live)
            .reads(state, Pattern::Stream { passes: 1 })
            .writes(
                state,
                Pattern::SparseSweep {
                    fraction: live * 0.4,
                },
            )
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(state);
    b.build()
}

/// PageRank skeleton shared by the two variants. `spmv_form` models
/// pr_spmv, whose large GPU-written rank vectors are first-touch page-fault
/// heavy on the heterogeneous processor (one of the paper's three
/// fault-slowdown benchmarks).
fn pagerank(name: &'static str, spmv_form: bool, scale: Scale) -> Pipeline {
    let n = scale.n(160 * 1024);
    let mut b = PipelineBuilder::new(&format!("pannotia/{name}"));
    let g = CsrGraph::declare(&mut b, n, 10.0, false);
    let rank_in = b.host("rank.in", n * 4);
    // pr_spmv materializes fresh GPU-side result vectors each round.
    let rank_out = if spmv_form {
        b.gpu_temp("rank.out", n * 8)
    } else {
        b.host("rank.out", n * 4)
    };
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(rank_in);
    b.h2d(flag);
    let rounds = scale.small(6).max(4);
    for round in 0..rounds {
        let k = b.gpu(&format!("spmv_{round}"), n, 24.0, 10.0);
        // pr_spmv's JDS layout permutes rows: the result vector is written
        // in permuted (scattered) order, which is what makes its first
        // touches unbatchable page faults on the heterogeneous processor.
        let out_pattern = if spmv_form {
            Pattern::Gather {
                count: n,
                region: 1.0,
            }
        } else {
            Pattern::Stream { passes: 1 }
        };
        g.attach_traversal(k, 1.0)
            .reads(rank_in, Pattern::Stream { passes: 1 })
            .writes(rank_out, out_pattern);
        b.gpu(&format!("normalize_{round}"), n, 10.0, 6.0)
            .reads(rank_out, Pattern::Stream { passes: 1 })
            .writes(rank_in, Pattern::Stream { passes: 1 })
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(rank_in);
    b.build()
}

/// pannotia/pr — power-iteration PageRank.
pub fn pr(scale: Scale) -> Pipeline {
    pagerank("pr", false, scale)
}

/// pannotia/pr_spmv — PageRank as explicit SpMV with fresh result vectors.
pub fn pr_spmv(scale: Scale) -> Pipeline {
    pagerank("pr_spmv", true, scale)
}

/// SSSP skeleton for the two Pannotia variants.
fn sssp_impl(name: &'static str, ell: bool, scale: Scale) -> Pipeline {
    let n = scale.n(160 * 1024);
    let mut b = PipelineBuilder::new(&format!("pannotia/{name}"));
    let g = CsrGraph::declare(&mut b, n, 8.0, true);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(flag);
    let rounds = scale.small(8).max(5);
    for round in 0..rounds {
        let active = [0.05, 0.2, 0.5, 0.7, 0.6, 0.4, 0.2, 0.1][round.min(7) as usize];
        let k = b.gpu(
            &format!("relax_{round}"),
            n,
            if ell { 18.0 } else { 24.0 },
            3.0,
        );
        // ELL packing regularizes the edge accesses into strided form.
        let k = if ell {
            k.reads(g.edges, Pattern::Strided { stride: 2 })
                .reads(g.props, Pattern::Stream { passes: 1 })
                .writes(g.props, Pattern::SparseSweep { fraction: active })
        } else {
            g.attach_traversal(k, active)
        };
        k.writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(g.props);
    b.build()
}

/// pannotia/sssp — CSR single-source shortest paths.
pub fn sssp(scale: Scale) -> Pipeline {
    sssp_impl("sssp", false, scale)
}

/// pannotia/sssp_ell — ELLPACK-format SSSP (meta-only in the examined set).
pub fn sssp_ell(scale: Scale) -> Pipeline {
    sssp_impl("sssp_ell", true, scale)
}

/// All 10 Pannotia workloads with their Table II flags.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload::examined(meta("bc", true, false), bc),
        Workload::examined(meta("color_max", true, false), color_max),
        Workload::extra(meta("color_maxmin", false, false), color_maxmin),
        Workload::examined(meta("fw", true, true), fw),
        Workload::examined(meta("fw_block", true, false), fw_block),
        Workload::examined(meta("mis", true, false), mis),
        Workload::examined(meta("pr", true, false), pr),
        Workload::examined(meta("pr_spmv", true, false), pr_spmv),
        Workload::examined(meta("sssp", true, false), sssp),
        Workload::extra(meta("sssp_ell", false, false), sssp_ell),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_workloads_eight_examined() {
        let w = workloads();
        assert_eq!(w.len(), 10);
        assert_eq!(w.iter().filter(|w| w.meta.examined).count(), 8);
    }

    #[test]
    fn table_ii_row_matches_paper() {
        let w = workloads();
        assert!(w.iter().all(|w| w.meta.pc_comm && w.meta.pipe_parallel));
        assert!(w.iter().all(|w| w.meta.regular && w.meta.irregular));
        assert!(w.iter().all(|w| !w.meta.sw_queue));
    }

    #[test]
    fn all_examined_pipelines_validate() {
        for w in workloads() {
            if let Some(p) = w.pipeline(Scale::TEST) {
                assert_eq!(p.validate(), Ok(()), "{}", p.name);
            }
        }
    }

    #[test]
    fn fw_touches_a_fraction_of_its_matrix() {
        let p = fw(Scale::TEST);
        let k = p
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .find(|c| c.name.starts_with("relax"))
            .unwrap();
        let sparse = k
            .patterns
            .iter()
            .any(|pi| matches!(pi.pattern, Pattern::SparseSweep { fraction } if fraction < 0.35));
        assert!(sparse, "fw must touch <1/3 of copied data");
    }

    #[test]
    fn pr_spmv_has_gpu_first_touch_buffer() {
        let p = pr_spmv(Scale::TEST);
        assert!(p
            .buffers
            .iter()
            .any(|b| b.name == "rank.out" && !b.mirrored));
        // The plain variant mirrors it instead.
        let p2 = pr(Scale::TEST);
        assert!(p2
            .buffers
            .iter()
            .any(|b| b.name == "rank.out" && b.mirrored));
    }
}
