//! LonestarGPU workload models.
//!
//! Lonestar is the study's most irregular suite: graph traversals,
//! worklist-driven refinement, and tree codes. All 14 benchmarks have
//! producer-consumer communication; 10 use software worklist queues
//! (Table II). The iterative ones share the paper's "outer-loop" structure —
//! the CPU launches a relaxation kernel, copies a convergence flag back, and
//! decides whether to run another round — which is why their copy counts are
//! high but their copied bytes are small.

use crate::builder::{PipelineBuilder, Scale};
use crate::common::{convergence_check, flag_buffer, CsrGraph};
use crate::ir::{CopyDir, Pipeline};
use crate::meta::{BenchMeta, Suite};
use crate::patterns::Pattern;
use crate::registry::Workload;

fn meta(
    name: &'static str,
    pipe_parallel: bool,
    irregular: bool,
    sw_queue: bool,
    examined: bool,
) -> BenchMeta {
    BenchMeta {
        suite: Suite::Lonestar,
        name,
        pc_comm: true,
        pipe_parallel,
        regular: true,
        irregular,
        sw_queue,
        examined,
        misalignment_sensitive: false,
    }
}

/// How a traversal tracks its frontier.
#[derive(Debug, Clone, Copy)]
enum QueueStyle {
    /// Topology-driven: every round sweeps all nodes.
    None,
    /// Topology-driven with atomic marks instead of a queue.
    AtomicMarks,
    /// Data-driven software worklist; the parameters are CTA width and
    /// scratch bytes per CTA (wlc uses CTA-local queue chunks in scratch).
    Worklist { cta: u32, scratch: u64 },
}

/// Shared skeleton of the bfs/sssp families: an upfront graph transfer, then
/// rounds of relaxation kernels with per-round flag copies and CPU loop
/// control.
struct TraversalSpec {
    name: &'static str,
    weighted: bool,
    queue: QueueStyle,
    /// Fraction of the graph active per round (frontier growth/decay).
    frontier: &'static [f64],
    /// Instructions per thread in the relax kernel.
    ipt: f64,
    /// FLOPs per thread (SSSP's weight additions, zero-ish for BFS).
    fpt: f64,
}

fn graph_traversal(spec: &TraversalSpec, scale: Scale) -> Pipeline {
    let n = scale.n(192 * 1024);
    let mut b = PipelineBuilder::new(&format!("lonestar/{}", spec.name));
    let g = CsrGraph::declare(&mut b, n, 8.0, spec.weighted);
    let flag = flag_buffer(&mut b);
    // Worklists are produced on the GPU and never copied.
    let queues = match spec.queue {
        QueueStyle::Worklist { .. } => Some((
            b.gpu_temp("worklist.in", n * 4),
            b.gpu_temp("worklist.out", n * 4),
        )),
        _ => None,
    };
    g.h2d_all(&mut b);
    b.h2d(flag);
    for (round, &active) in spec.frontier.iter().enumerate() {
        let threads = ((n as f64 * active) as u64).max(1024);
        let kernel = b
            .gpu(&format!("relax_{round}"), threads, spec.ipt, spec.fpt)
            .cta(
                match spec.queue {
                    QueueStyle::Worklist { cta, .. } => cta,
                    _ => 256,
                },
                match spec.queue {
                    QueueStyle::Worklist { scratch, .. } => scratch,
                    _ => 0,
                },
            );
        let kernel = g.attach_traversal(kernel, active);
        let kernel = kernel.writes_all(flag, Pattern::Point { count: 1 });
        match (spec.queue, queues) {
            (QueueStyle::Worklist { .. }, Some((qin, qout))) => {
                kernel
                    .reads(qin, Pattern::SparseSweep { fraction: active })
                    .writes(qout, Pattern::SparseSweep { fraction: active });
            }
            (QueueStyle::AtomicMarks, _) => {
                kernel.writes_all(
                    g.props,
                    Pattern::Gather {
                        count: (n as f64 * active * 0.2) as u64,
                        region: 1.0,
                    },
                );
            }
            _ => {}
        }
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(g.props);
    b.build()
}

/// lonestar/bfs — topology-driven breadth-first search. Each round sweeps
/// all nodes and relaxes the active frontier.
pub fn bfs(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "bfs",
            weighted: false,
            queue: QueueStyle::None,
            frontier: &[0.05, 0.2, 0.55, 0.8, 0.45, 0.15, 0.05],
            ipt: 18.0,
            fpt: 1.0,
        },
        scale,
    )
}

/// lonestar/bfs_atomic — BFS using atomic level marks instead of a
/// worklist (not examined: meta only in the registry; builder provided for
/// completeness).
pub fn bfs_atomic(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "bfs_atomic",
            weighted: false,
            queue: QueueStyle::AtomicMarks,
            frontier: &[0.05, 0.2, 0.55, 0.8, 0.45, 0.15, 0.05],
            ipt: 24.0,
            fpt: 1.0,
        },
        scale,
    )
}

/// lonestar/bfs_wla — worklist BFS with global atomic appends.
pub fn bfs_wla(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "bfs_wla",
            weighted: false,
            queue: QueueStyle::Worklist {
                cta: 256,
                scratch: 0,
            },
            frontier: &[0.04, 0.18, 0.5, 0.75, 0.4, 0.12, 0.04],
            ipt: 26.0,
            fpt: 1.0,
        },
        scale,
    )
}

/// lonestar/bfs_wlc — worklist BFS with CTA-local queue chunks staged in
/// scratch memory before a bulk append.
pub fn bfs_wlc(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "bfs_wlc",
            weighted: false,
            queue: QueueStyle::Worklist {
                cta: 256,
                scratch: 8 * 1024,
            },
            frontier: &[0.04, 0.18, 0.5, 0.75, 0.4, 0.12, 0.04],
            ipt: 22.0,
            fpt: 1.0,
        },
        scale,
    )
}

/// lonestar/bfs_wlw — worklist BFS with warp-cooperative appends.
pub fn bfs_wlw(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "bfs_wlw",
            weighted: false,
            queue: QueueStyle::Worklist {
                cta: 128,
                scratch: 0,
            },
            frontier: &[0.04, 0.18, 0.5, 0.75, 0.4, 0.12, 0.04],
            ipt: 20.0,
            fpt: 1.0,
        },
        scale,
    )
}

/// lonestar/sssp — topology-driven single-source shortest paths
/// (Bellman-Ford style); weighted edges mean more data and more rounds than
/// BFS.
pub fn sssp(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "sssp",
            weighted: true,
            queue: QueueStyle::None,
            frontier: &[0.04, 0.15, 0.45, 0.75, 0.7, 0.5, 0.3, 0.15, 0.06],
            ipt: 24.0,
            fpt: 3.0,
        },
        scale,
    )
}

/// lonestar/sssp_wlc — worklist SSSP, CTA-chunked queue.
pub fn sssp_wlc(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "sssp_wlc",
            weighted: true,
            queue: QueueStyle::Worklist {
                cta: 256,
                scratch: 8 * 1024,
            },
            frontier: &[0.03, 0.12, 0.4, 0.7, 0.65, 0.45, 0.25, 0.1, 0.05],
            ipt: 28.0,
            fpt: 3.0,
        },
        scale,
    )
}

/// lonestar/sssp_wln — worklist SSSP with near-far priority buckets: many
/// short rounds, so kernel-launch serialization is a visible fraction of run
/// time (the paper names sssp_wln as a benchmark where `C_serial` reaches
/// several percent).
pub fn sssp_wln(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "sssp_wln",
            weighted: true,
            queue: QueueStyle::Worklist {
                cta: 256,
                scratch: 0,
            },
            frontier: &[
                0.02, 0.05, 0.1, 0.2, 0.3, 0.35, 0.3, 0.25, 0.2, 0.15, 0.1, 0.07, 0.05, 0.03, 0.02,
                0.02,
            ],
            ipt: 26.0,
            fpt: 3.0,
        },
        scale,
    )
}

/// lonestar/sssp_wlw — worklist SSSP, warp-cooperative (not examined).
pub fn sssp_wlw(scale: Scale) -> Pipeline {
    graph_traversal(
        &TraversalSpec {
            name: "sssp_wlw",
            weighted: true,
            queue: QueueStyle::Worklist {
                cta: 128,
                scratch: 0,
            },
            frontier: &[0.03, 0.12, 0.4, 0.7, 0.65, 0.45, 0.25, 0.1, 0.05],
            ipt: 24.0,
            fpt: 3.0,
        },
        scale,
    )
}

/// lonestar/bh — Barnes-Hut n-body. Six distinct kernels per timestep over
/// a GPU-resident tree; the tree and sort scratch are large GPU-temporary
/// data (the paper's Fig. 4 calls bh out for substantial GPU-only
/// footprint), and its remaining copies resist elimination (the one
/// benchmark whose copy count does not drop).
pub fn bh(scale: Scale) -> Pipeline {
    let n = scale.n(96 * 1024);
    let mut b = PipelineBuilder::new("lonestar/bh");
    let pos = b.host_elems("bodies.pos", n * 16, 16);
    let vel = b.host_elems("bodies.vel", n * 16, 16);
    let tree = b.gpu_temp("tree.nodes", n * 24);
    let sorted = b.gpu_temp("tree.sorted", n * 4);
    // bh repacks bodies into device layout each step: not elidable.
    b.sticky_copy(pos, CopyDir::H2D, None);
    b.sticky_copy(vel, CopyDir::H2D, None);
    for step in 0..2u32 {
        b.gpu(&format!("bound_box_{step}"), n, 8.0, 6.0)
            .reads(pos, Pattern::Stream { passes: 1 });
        b.gpu(&format!("build_tree_{step}"), n, 40.0, 4.0)
            .serial()
            .reads(pos, Pattern::Stream { passes: 1 })
            .writes_all(
                tree,
                Pattern::Gather {
                    count: n * 2,
                    region: 1.0,
                },
            );
        b.gpu(&format!("summarize_{step}"), n / 2, 20.0, 12.0)
            .reads_all(tree, Pattern::Stream { passes: 1 })
            .writes_all(tree, Pattern::SparseSweep { fraction: 0.5 });
        b.gpu(&format!("sort_{step}"), n, 16.0, 0.0)
            .reads_all(tree, Pattern::Stream { passes: 1 })
            .writes(sorted, Pattern::Stream { passes: 1 });
        b.gpu(&format!("force_{step}"), n, 520.0, 400.0)
            .cta(256, 4 * 1024)
            .reads(sorted, Pattern::Stream { passes: 1 })
            .reads_all(
                tree,
                Pattern::Gather {
                    count: n * 6,
                    region: 0.4,
                },
            )
            .reads(pos, Pattern::Stream { passes: 1 })
            .writes(vel, Pattern::Stream { passes: 1 });
        b.gpu(&format!("advance_{step}"), n, 12.0, 8.0)
            .reads(vel, Pattern::Stream { passes: 1 })
            .writes(pos, Pattern::Stream { passes: 1 });
    }
    b.sticky_copy(pos, CopyDir::D2H, None);
    b.build()
}

/// lonestar/dmr — Delaunay mesh refinement. Worklist-driven with
/// variable-size cavity re-triangulation; wide data dependencies between
/// rounds limit pipeline overlap (the paper flags dmr when noting the
/// overlap model is optimistic).
pub fn dmr(scale: Scale) -> Pipeline {
    let n = scale.n(128 * 1024); // triangles
    let mut b = PipelineBuilder::new("lonestar/dmr");
    let mesh = b.host_elems("mesh.triangles", n * 32, 32);
    let bad = b.gpu_temp("worklist.bad", n * 4);
    let flag = flag_buffer(&mut b);
    b.h2d(mesh);
    b.h2d(flag);
    let rounds = scale.small(5).max(3);
    for round in 0..rounds {
        let active = 0.3 / (round as f64 + 1.0);
        b.gpu(&format!("check_{round}"), n, 30.0, 18.0)
            .reads(mesh, Pattern::Stream { passes: 1 })
            .writes(bad, Pattern::SparseSweep { fraction: active });
        b.gpu(
            &format!("refine_{round}"),
            ((n as f64 * active) as u64).max(1024),
            120.0,
            60.0,
        )
        .serial() // cavities overlap arbitrarily: no safe chunking
        .reads(bad, Pattern::SparseSweep { fraction: active })
        .reads_all(
            mesh,
            Pattern::Gather {
                count: (n as f64 * active * 8.0) as u64,
                region: 1.0,
            },
        )
        .writes_all(
            mesh,
            Pattern::Gather {
                count: (n as f64 * active * 4.0) as u64,
                region: 1.0,
            },
        )
        .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(mesh);
    b.build()
}

/// lonestar/mst — Boruvka minimum spanning tree. Each round runs three
/// kernels of very different size (find-min, connect, contract) — the shape
/// the paper suggests for compute migration of short kernels to CPU cores.
pub fn mst(scale: Scale) -> Pipeline {
    let n = scale.n(160 * 1024);
    let mut b = PipelineBuilder::new("lonestar/mst");
    let g = CsrGraph::declare(&mut b, n, 8.0, true);
    let comp = b.host("components", n * 4);
    let minedge = b.gpu_temp("minedge", n * 8);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(comp);
    b.h2d(flag);
    let rounds = scale.small(6).max(4);
    for round in 0..rounds {
        let live = 1.0 / (1 << round.min(6)) as f64;
        // Find the minimum outgoing edge per component: big kernel.
        let k = b.gpu(&format!("find_min_{round}"), n, 34.0, 6.0);
        g.attach_traversal(k, live)
            .reads(comp, Pattern::Stream { passes: 1 })
            .writes(minedge, Pattern::SparseSweep { fraction: live });
        // Connect components: mid-size scatter kernel.
        b.gpu(
            &format!("connect_{round}"),
            ((n as f64 * live) as u64).max(1024),
            18.0,
            0.0,
        )
        .reads(minedge, Pattern::SparseSweep { fraction: live })
        .writes_all(
            comp,
            Pattern::Gather {
                count: (n as f64 * live) as u64,
                region: 1.0,
            },
        )
        .writes_all(flag, Pattern::Point { count: 1 });
        // Pointer-jumping contraction: short kernel.
        b.gpu(&format!("contract_{round}"), n, 8.0, 0.0)
            .reads(comp, Pattern::Stream { passes: 1 })
            .writes(comp, Pattern::Stream { passes: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(comp);
    b.build()
}

/// lonestar/pta — Andersen-style points-to analysis (meta only in the
/// paper's examined set; the builder exists so the full suite is runnable).
/// Constraint-graph rounds with no safe pipeline parallelism.
pub fn pta(scale: Scale) -> Pipeline {
    let n = scale.n(96 * 1024);
    let mut b = PipelineBuilder::new("lonestar/pta");
    let g = CsrGraph::declare(&mut b, n, 12.0, false);
    let points_to = b.host("points_to_sets", n * 16);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(points_to);
    b.h2d(flag);
    for round in 0..3u32 {
        let k = b.gpu(&format!("propagate_{round}"), n, 60.0, 0.0).serial();
        g.attach_traversal(k, 0.6)
            .reads(points_to, Pattern::Stream { passes: 1 })
            .writes_all(
                points_to,
                Pattern::Gather {
                    count: n * 2,
                    region: 1.0,
                },
            )
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(points_to);
    b.build()
}

/// lonestar/sp — survey propagation on a factor graph laid out in regular
/// clause/literal arrays (the one Lonestar benchmark whose P-C constructs
/// are regular only).
pub fn sp(scale: Scale) -> Pipeline {
    let n = scale.n(256 * 1024); // literals
    let m = n * 3; // 3-SAT clauses touch 3 literals
    let mut b = PipelineBuilder::new("lonestar/sp");
    let clauses = b.host_elems("clauses", m * 12, 12);
    let eta = b.host("eta", m * 4);
    let bias = b.host("bias", n * 4);
    let flag = flag_buffer(&mut b);
    b.h2d(clauses);
    b.h2d(eta);
    b.h2d(bias);
    b.h2d(flag);
    let rounds = scale.small(8).max(5);
    for round in 0..rounds {
        b.gpu(&format!("update_eta_{round}"), m, 52.0, 40.0)
            .reads(clauses, Pattern::Stream { passes: 1 })
            .reads(bias, Pattern::Strided { stride: 3 })
            .writes(eta, Pattern::Stream { passes: 1 });
        b.gpu(&format!("update_bias_{round}"), n, 60.0, 48.0)
            .reads(eta, Pattern::Stream { passes: 1 })
            .writes(bias, Pattern::Stream { passes: 1 })
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
        // Fix strongly-biased variables on the CPU.
        b.cpu(&format!("decimate_{round}"), n / 64, 14.0, 2.0)
            .serial()
            .reads(bias, Pattern::Strided { stride: 64 });
    }
    b.d2h(bias);
    b.build()
}

/// All 14 Lonestar workloads with their Table II flags.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload::examined(meta("bfs", true, true, false, true), bfs),
        Workload::extra(meta("bfs_atomic", true, true, false, false), bfs_atomic),
        Workload::examined(meta("bfs_wla", true, true, true, true), bfs_wla),
        Workload::examined(meta("bfs_wlc", true, true, true, true), bfs_wlc),
        Workload::examined(meta("bfs_wlw", true, true, true, true), bfs_wlw),
        Workload::examined(meta("bh", true, true, false, true), bh),
        Workload::examined(meta("dmr", true, true, true, true), dmr),
        Workload::examined(meta("mst", true, true, true, true), mst),
        Workload::extra(meta("pta", false, true, true, false), pta),
        Workload::examined(meta("sp", true, false, true, true), sp),
        Workload::examined(meta("sssp", true, true, false, true), sssp),
        Workload::examined(meta("sssp_wlc", true, true, true, true), sssp_wlc),
        Workload::examined(meta("sssp_wln", true, true, true, true), sssp_wln),
        Workload::extra(meta("sssp_wlw", true, true, true, false), sssp_wlw),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_workloads_eleven_examined() {
        let w = workloads();
        assert_eq!(w.len(), 14);
        assert_eq!(w.iter().filter(|w| w.meta.examined).count(), 11);
    }

    #[test]
    fn all_examined_pipelines_build_and_validate() {
        for w in workloads() {
            if let Some(p) = w.pipeline(Scale::TEST) {
                assert_eq!(p.validate(), Ok(()), "{}", p.name);
                assert!(p.compute_stages() > 0);
            }
        }
    }

    #[test]
    fn bh_copies_are_sticky() {
        let p = bh(Scale::TEST);
        assert_eq!(p.residual_copies(), p.copy_stages());
    }

    #[test]
    fn worklist_variants_have_gpu_temp_queues() {
        let p = bfs_wla(Scale::TEST);
        let queues = p
            .buffers
            .iter()
            .filter(|b| b.name.starts_with("worklist") && !b.mirrored)
            .count();
        assert_eq!(queues, 2);
    }

    #[test]
    fn traversals_have_outer_loop_structure() {
        let p = bfs(Scale::TEST);
        // Each of the 7 rounds: a kernel, a D2H flag copy, a CPU check.
        let cpu_stages = p
            .stages
            .iter()
            .filter_map(|s| s.as_compute())
            .filter(|c| c.exec == crate::ir::ExecKind::Cpu)
            .count();
        assert_eq!(cpu_stages, 7);
        assert!(p.copy_stages() >= 7);
    }

    #[test]
    fn sssp_carries_weights() {
        let p = sssp(Scale::TEST);
        assert!(p.buffers.iter().any(|b| b.name == "graph.weights"));
    }

    #[test]
    fn table_ii_flags_match_paper_row() {
        let w = workloads();
        assert_eq!(w.iter().filter(|w| w.meta.pc_comm).count(), 14);
        assert_eq!(w.iter().filter(|w| w.meta.pipe_parallel).count(), 13);
        assert_eq!(w.iter().filter(|w| w.meta.regular).count(), 14);
        assert_eq!(w.iter().filter(|w| w.meta.irregular).count(), 13);
        assert_eq!(w.iter().filter(|w| w.meta.sw_queue).count(), 10);
    }
}
