//! Parboil workload models.
//!
//! Parboil skews toward regular scientific/throughput kernels: several
//! benchmarks are a single dense kernel between an input and an output copy
//! (mri_q, sgemm) and so have no multi-stage producer-consumer communication,
//! while the structured ones (stencil, lbm, fft, cutcp, histo) iterate
//! kernels over double-buffered grids — the class the paper says benefits
//! most from kernel fission + asynchronous streams (Table II row:
//! 12 benchmarks, 8 with P-C communication, 3 irregular, 1 software queue).

use crate::builder::{PipelineBuilder, Scale};
use crate::common::{convergence_check, flag_buffer, CsrGraph};
use crate::ir::{CopyDir, Pipeline};
use crate::meta::{BenchMeta, Suite};
use crate::patterns::Pattern;
use crate::registry::Workload;

#[allow(clippy::too_many_arguments)]
fn meta(
    name: &'static str,
    pc: bool,
    par: bool,
    reg: bool,
    irr: bool,
    swq: bool,
    examined: bool,
    misaligned: bool,
) -> BenchMeta {
    BenchMeta {
        suite: Suite::Parboil,
        name,
        pc_comm: pc,
        pipe_parallel: par,
        regular: reg,
        irregular: irr,
        sw_queue: swq,
        examined,
        misalignment_sensitive: misaligned,
    }
}

/// parboil/bfs — queue-based breadth-first search (the suite's one software
/// worklist benchmark).
pub fn bfs(scale: Scale) -> Pipeline {
    let n = scale.n(160 * 1024);
    let mut b = PipelineBuilder::new("parboil/bfs");
    let g = CsrGraph::declare(&mut b, n, 8.0, false);
    let q_in = b.gpu_temp("queue.in", n * 4);
    let q_out = b.gpu_temp("queue.out", n * 4);
    let flag = flag_buffer(&mut b);
    g.h2d_all(&mut b);
    b.h2d(flag);
    for (round, active) in [0.03, 0.15, 0.45, 0.7, 0.4, 0.12, 0.04].iter().enumerate() {
        let threads = ((n as f64 * active) as u64).max(1024);
        let k = b
            .gpu(&format!("frontier_{round}"), threads, 24.0, 1.0)
            .cta(512, 4096);
        g.attach_traversal(k, *active)
            .reads(q_in, Pattern::SparseSweep { fraction: *active })
            .writes(q_out, Pattern::SparseSweep { fraction: *active })
            .writes_all(flag, Pattern::Point { count: 1 });
        convergence_check(&mut b, flag, &round.to_string());
    }
    b.d2h(g.props);
    b.build()
}

/// parboil/cutcp — cutoff Coulomb potential over a 3D lattice. The CPU bins
/// atoms per region and ships each bin to the GPU inside the loop; those
/// repacked copies resist elimination (the paper's Fig. 4 lists cutcp among
/// the benchmarks whose copied footprint largely remains).
pub fn cutcp(scale: Scale) -> Pipeline {
    let atoms = scale.n(192 * 1024);
    let lattice = scale.n(512 * 1024);
    let mut b = PipelineBuilder::new("parboil/cutcp");
    let atom_buf = b.host_elems("atoms", atoms * 16, 16);
    let bins = b.host_elems("atom_bins", atoms * 16, 16);
    let grid = b.result("lattice", lattice * 4);
    let regions = 6;
    for r in 0..regions {
        // Bin the region's atoms on the CPU (repacking: copy not elidable).
        b.cpu(&format!("bin_{r}"), atoms / regions, 22.0, 4.0)
            .reads(
                atom_buf,
                Pattern::SparseSweep {
                    fraction: 1.0 / regions as f64,
                },
            )
            .writes(
                bins,
                Pattern::SparseSweep {
                    fraction: 1.0 / regions as f64,
                },
            );
        b.sticky_copy(bins, CopyDir::H2D, Some(atoms * 16 / regions));
        b.gpu(&format!("potential_{r}"), lattice / regions, 180.0, 140.0)
            .cta(128, 8 * 1024)
            .reads_all(bins, Pattern::Stream { passes: 1 })
            .writes(grid, Pattern::Stream { passes: 1 });
    }
    b.d2h(grid);
    b.build()
}

/// parboil/fft — batched 1D FFT. Each butterfly pass reads one buffer
/// strided and writes the other; the host-side double-buffer shuffle is a
/// copy the elimination pass cannot remove, and the wide all-to-all data
/// dependency between passes limits pipeline overlap (both noted in the
/// paper).
pub fn fft(scale: Scale) -> Pipeline {
    let n = scale.n(1 << 20);
    let mut b = PipelineBuilder::new("parboil/fft");
    let ping = b.host_elems("data.ping", n * 8, 8);
    let pong = b.host_elems("data.pong", n * 8, 8);
    b.h2d(ping);
    b.h2d(pong);
    let passes = 5u32;
    for p in 0..passes {
        let (src, dst) = if p % 2 == 0 {
            (ping, pong)
        } else {
            (pong, ping)
        };
        b.gpu(&format!("butterfly_{p}"), n / 2, 22.0, 10.0)
            .serial() // all-to-all shuffle: no safe chunking
            .reads(
                src,
                Pattern::Strided {
                    stride: 1 << p.min(6),
                },
            )
            .reads(src, Pattern::Stream { passes: 1 })
            .writes(dst, Pattern::Stream { passes: 1 });
    }
    // Host re-packs the result into natural order: double-buffer copies.
    b.sticky_copy(ping, CopyDir::D2H, None);
    b.cpu("reorder", n / 8, 12.0, 0.0)
        .reads(ping, Pattern::Stream { passes: 1 })
        .writes(pong, Pattern::Stream { passes: 1 });
    b.build()
}

/// parboil/histo — large histogram with privatized bins. The CPU clears the
/// bin array every iteration (a costly memory operation the paper suggests
/// eliminating with better data structures).
pub fn histo(scale: Scale) -> Pipeline {
    let n = scale.n(2 * 1024 * 1024);
    let bins = scale.n(256 * 1024);
    let mut b = PipelineBuilder::new("parboil/histo");
    let input = b.host("image", n * 4);
    let bin_buf = b.host("bins", bins * 4);
    b.h2d(input);
    for iter in 0..5u32 {
        b.cpu(&format!("zero_bins_{iter}"), bins, 2.0, 0.0)
            .writes(bin_buf, Pattern::Stream { passes: 1 });
        b.h2d(bin_buf);
        b.gpu(&format!("histo_{iter}"), n, 48.0, 0.0)
            .cta(512, 8 * 1024)
            .reads(input, Pattern::Stream { passes: 1 })
            .writes_all(
                bin_buf,
                Pattern::Gather {
                    count: n / 4,
                    region: 0.2,
                },
            );
        b.d2h(bin_buf);
    }
    b.build()
}

/// parboil/lbm — D3Q19 lattice-Boltzmann. Two huge distribution grids in a
/// stream-collide loop; the CPU memsets the destination grid up front
/// (flagged by the paper as CPU data-movement overhead), and shared
/// allocations are misalignment-sensitive.
pub fn lbm(scale: Scale) -> Pipeline {
    let cells = scale.n(140 * 1024);
    let grid_bytes = cells * 19 * 4;
    let mut b = PipelineBuilder::new("parboil/lbm");
    let src = b.host("grid.src", grid_bytes);
    let dst = b.host("grid.dst", grid_bytes);
    b.cpu("clear_dst", cells * 19 / 16, 2.0, 0.0)
        .writes(dst, Pattern::Stream { passes: 1 });
    b.h2d(src);
    b.h2d(dst);
    for iter in 0..8u32 {
        let (s, d) = if iter % 2 == 0 {
            (src, dst)
        } else {
            (dst, src)
        };
        b.gpu(&format!("stream_collide_{iter}"), cells, 160.0, 100.0)
            .reads(s, Pattern::Stencil { row_elems: 1024 })
            .writes(d, Pattern::Stream { passes: 1 });
    }
    b.d2h(src);
    b.build()
}

/// parboil/mri_q — MRI Q-matrix computation: one compute-dense kernel
/// between input and output copies (no multi-stage P-C communication).
pub fn mri_q(scale: Scale) -> Pipeline {
    let n = scale.n(512 * 1024);
    let k = 2048;
    let mut b = PipelineBuilder::new("parboil/mri_q");
    b.work_scale(1.0); // already compute-dense: 5*k instructions per thread
    let coords = b.host_elems("coords", n * 12, 12);
    let kspace = b.host_elems("kspace", k * 16, 16);
    let q = b.result("q_out", n * 8);
    b.h2d(coords);
    b.h2d(kspace);
    b.gpu("compute_q", n, 5.0 * k as f64, 4.0 * k as f64)
        .cta(256, 2048)
        .reads(coords, Pattern::Stream { passes: 1 })
        .reads_all(kspace, Pattern::Stream { passes: 8 })
        .writes(q, Pattern::Stream { passes: 1 });
    b.d2h(q);
    b.build()
}

/// parboil/sgemm — dense single-precision matrix multiply: a single tiled
/// kernel (no P-C communication).
pub fn sgemm(scale: Scale) -> Pipeline {
    let dim = scale.dim(1100);
    let mat = dim * dim * 4;
    let mut b = PipelineBuilder::new("parboil/sgemm");
    let a = b.host("mat.a", mat);
    let bm = b.host("mat.b", mat);
    let c = b.result("mat.c", mat);
    b.h2d(a);
    b.h2d(bm);
    b.gpu(
        "sgemm_tiled",
        dim * dim / 4,
        0.9 * dim as f64,
        0.7 * dim as f64,
    )
    .cta(128, 8 * 1024)
    .reads(a, Pattern::Stream { passes: 8 })
    .reads_all(bm, Pattern::Stream { passes: 8 })
    .writes(c, Pattern::Stream { passes: 1 });
    b.d2h(c);
    b.build()
}

/// parboil/spmv — JDS sparse matrix-vector product, iterated; the dense
/// vector gather is the irregular construct.
pub fn spmv(scale: Scale) -> Pipeline {
    let rows = scale.n(256 * 1024);
    let nnz = rows * 12;
    let mut b = PipelineBuilder::new("parboil/spmv");
    let vals = b.host("jds.vals", nnz * 4);
    let cols = b.host("jds.cols", nnz * 4);
    let x = b.host("vec.x", rows * 4);
    let y = b.host("vec.y", rows * 4);
    b.h2d(vals);
    b.h2d(cols);
    b.h2d(x);
    for iter in 0..10u32 {
        let (src, dst) = if iter % 2 == 0 { (x, y) } else { (y, x) };
        b.gpu(&format!("spmv_{iter}"), rows, 110.0, 80.0)
            .reads(vals, Pattern::Stream { passes: 1 })
            .reads(cols, Pattern::Stream { passes: 1 })
            .reads_all(
                src,
                Pattern::Gather {
                    count: nnz,
                    region: 1.0,
                },
            )
            .writes(dst, Pattern::Stream { passes: 1 });
    }
    b.d2h(y);
    b.build()
}

/// parboil/stencil — 3D 7-point Jacobi iteration over double-buffered
/// grids; the canonical regular, chunkable, async-streams-friendly shape.
pub fn stencil(scale: Scale) -> Pipeline {
    let cells = scale.n(1 << 21);
    let mut b = PipelineBuilder::new("parboil/stencil");
    let src = b.host("grid.a", cells * 4);
    let dst = b.host("grid.b", cells * 4);
    b.h2d(src);
    b.h2d(dst);
    for iter in 0..8u32 {
        let (s, d) = if iter % 2 == 0 {
            (src, dst)
        } else {
            (dst, src)
        };
        b.gpu(&format!("jacobi_{iter}"), cells, 52.0, 30.0)
            .reads(s, Pattern::Stencil { row_elems: 512 })
            .writes(d, Pattern::Stream { passes: 1 });
    }
    b.d2h(src);
    b.build()
}

/// All 12 Parboil workloads with their Table II flags.
pub fn workloads() -> Vec<Workload> {
    vec![
        Workload::examined(meta("bfs", true, true, true, true, true, true, false), bfs),
        Workload::examined(
            meta("cutcp", true, true, true, false, false, true, false),
            cutcp,
        ),
        Workload::examined(
            meta("fft", true, true, true, false, false, true, false),
            fft,
        ),
        Workload::examined(
            meta("histo", true, true, true, true, false, true, false),
            histo,
        ),
        Workload::examined(meta("lbm", true, true, true, false, false, true, true), lbm),
        Workload::extra(
            meta("mri_gridding", true, true, true, false, false, false, false),
            mri_gridding,
        ),
        Workload::examined(
            meta("mri_q", false, false, false, false, false, true, false),
            mri_q,
        ),
        Workload::extra(
            meta("sad", false, false, false, false, false, false, false),
            sad,
        ),
        Workload::examined(
            meta("sgemm", false, false, false, false, false, true, false),
            sgemm,
        ),
        Workload::examined(
            meta("spmv", true, true, true, true, false, true, false),
            spmv,
        ),
        Workload::examined(
            meta("stencil", true, true, true, false, false, true, true),
            stencil,
        ),
        Workload::extra(
            meta("tpacf", false, false, false, false, false, false, false),
            tpacf,
        ),
    ]
}

/// parboil/mri_gridding — k-space sample gridding: a CPU binning pass then
/// a scatter-heavy interpolation kernel. Not examined in the paper (it did
/// not run in gem5-gpu); modeled here so the full suite is runnable.
pub fn mri_gridding(scale: Scale) -> Pipeline {
    let samples = scale.n(512 * 1024);
    let grid = scale.n(2 * 1024 * 1024);
    let mut b = PipelineBuilder::new("parboil/mri_gridding");
    let sample_buf = b.host_elems("samples", samples * 16, 16);
    let bins = b.host("sample_bins", samples * 4);
    let grid_buf = b.result("grid", grid * 4);
    b.cpu("bin_samples", samples, 18.0, 2.0)
        .reads(sample_buf, Pattern::Stream { passes: 1 })
        .writes(bins, Pattern::Stream { passes: 1 });
    b.h2d(sample_buf);
    b.h2d(bins);
    b.gpu("gridding", samples, 90.0, 60.0)
        .cta(256, 4 * 1024)
        .reads(sample_buf, Pattern::Stream { passes: 1 })
        .reads(bins, Pattern::Stream { passes: 1 })
        .writes_all(
            grid_buf,
            Pattern::Gather {
                count: samples * 4,
                region: 1.0,
            },
        );
    b.d2h(grid_buf);
    b.build()
}

/// parboil/sad — H.264 sum-of-absolute-differences motion estimation: one
/// kernel family over a current and a reference frame (no P-C
/// communication). Not examined in the paper.
pub fn sad(scale: Scale) -> Pipeline {
    let px = scale.n(1 << 20);
    let mut b = PipelineBuilder::new("parboil/sad");
    let cur = b.host("frame.cur", px * 4);
    let reference = b.host("frame.ref", px * 4);
    let sads = b.result("sad_results", px * 8);
    b.h2d(cur);
    b.h2d(reference);
    b.gpu("sad_4x4", px / 16, 220.0, 160.0)
        .cta(64, 4 * 1024)
        .reads(cur, Pattern::Stream { passes: 1 })
        .reads_all(
            reference,
            Pattern::Gather {
                count: px / 2,
                region: 0.25,
            },
        )
        .writes(sads, Pattern::Stream { passes: 1 });
    b.d2h(sads);
    b.build()
}

/// parboil/tpacf — two-point angular correlation: an all-pairs histogram
/// kernel over sky coordinates (no P-C communication). Not examined in the
/// paper.
pub fn tpacf(scale: Scale) -> Pipeline {
    let points = scale.n(96 * 1024);
    let mut b = PipelineBuilder::new("parboil/tpacf");
    let coords = b.host_elems("coords", points * 8, 8);
    let bins = b.result("histogram", 256 * 1024);
    b.h2d(coords);
    b.gpu("correlate", points, 1400.0, 900.0)
        .cta(256, 8 * 1024)
        .reads(coords, Pattern::Stream { passes: 8 })
        .writes_all(bins, Pattern::Point { count: 16 * 1024 });
    b.d2h(bins);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads_nine_examined() {
        let w = workloads();
        assert_eq!(w.len(), 12);
        assert_eq!(w.iter().filter(|w| w.meta.examined).count(), 9);
    }

    #[test]
    fn table_ii_row_matches_paper() {
        let w = workloads();
        assert_eq!(w.iter().filter(|w| w.meta.pc_comm).count(), 8);
        assert_eq!(w.iter().filter(|w| w.meta.pipe_parallel).count(), 8);
        assert_eq!(w.iter().filter(|w| w.meta.regular).count(), 8);
        assert_eq!(w.iter().filter(|w| w.meta.irregular).count(), 3);
        assert_eq!(w.iter().filter(|w| w.meta.sw_queue).count(), 1);
    }

    #[test]
    fn all_examined_pipelines_validate() {
        for w in workloads() {
            if let Some(p) = w.pipeline(Scale::TEST) {
                assert_eq!(p.validate(), Ok(()), "{}", p.name);
            }
        }
    }

    #[test]
    fn single_kernel_benchmarks_have_no_pc_comm() {
        for w in workloads() {
            if w.meta.name == "mri_q" || w.meta.name == "sgemm" {
                assert!(!w.meta.pc_comm);
                let p = w.pipeline(Scale::TEST).unwrap();
                assert_eq!(
                    p.stages.iter().filter_map(|s| s.as_compute()).count(),
                    1,
                    "{} should be a single kernel",
                    w.meta.name
                );
            }
        }
    }

    #[test]
    fn cutcp_keeps_residual_copies() {
        let p = cutcp(Scale::TEST);
        assert!(p.residual_copies() >= 6);
    }

    #[test]
    fn fft_passes_are_serial() {
        let p = fft(Scale::TEST);
        for s in p.stages.iter().filter_map(|s| s.as_compute()) {
            if s.name.starts_with("butterfly") {
                assert!(!s.chunkable, "butterfly passes must not chunk");
            }
        }
    }
}
