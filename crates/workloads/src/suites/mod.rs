//! Per-suite workload model collections.

pub mod lonestar;
pub mod pannotia;
pub mod parboil;
pub mod rodinia;
