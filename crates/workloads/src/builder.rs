//! Fluent construction of benchmark [`Pipeline`]s.
//!
//! The 46 workload models share this vocabulary: declare buffers, then append
//! copies, CPU stages, and GPU kernels in program order. Stage handles chain
//! `reads`/`writes` pattern attachments.

use heteropipe_mem::AccessKind;

use crate::ir::{
    BufferId, BufferInit, BufferSpec, ComputeStage, CopyDir, CopyStage, ExecKind, PatternInstance,
    Pipeline, Stage,
};
use crate::patterns::Pattern;

pub use crate::patterns::Pattern as Shape;

/// Input-set scale factor.
///
/// `PAPER` approximates the paper's input criteria scaled to simulate in
/// milliseconds-per-benchmark (§III-D footprints of tens of MB scale to a
/// few-to-tens of MB here, always far above the 1 MiB GPU L2 so cache
/// contention behaviour is preserved). `TEST` shrinks further for fast unit
/// tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    factor: f64,
}

impl Scale {
    /// Experiment scale: every figure/table regeneration uses this.
    pub const PAPER: Scale = Scale { factor: 1.0 };
    /// Fast test scale.
    pub const TEST: Scale = Scale { factor: 0.08 };

    /// A custom scale factor.
    pub fn new(factor: f64) -> Self {
        assert!(factor > 0.0 && factor.is_finite(), "scale must be positive");
        Scale { factor }
    }

    /// The raw scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Scales an element count, keeping at least 4096 elements so kernels
    /// stay wider than a warp.
    pub fn n(&self, base: u64) -> u64 {
        ((base as f64 * self.factor) as u64).max(4096)
    }

    /// Scales a small count (iterations, rows) with a floor of 1.
    pub fn small(&self, base: u64) -> u64 {
        ((base as f64 * self.factor.sqrt()) as u64).max(1)
    }

    /// Scales a matrix dimension: the *square* of the result tracks the
    /// scale factor, with a floor of 256 (so `dim*dim` buffers shrink
    /// linearly with scale like everything else).
    pub fn dim(&self, base: u64) -> u64 {
        ((base as f64 * self.factor.sqrt()) as u64).max(256)
    }
}

/// Builder for a benchmark pipeline.
#[derive(Debug)]
pub struct PipelineBuilder {
    name: String,
    buffers: Vec<BufferSpec>,
    stages: Vec<Stage>,
    work_scale: f64,
}

impl PipelineBuilder {
    /// Starts a pipeline named `name` (use `suite/bench`).
    ///
    /// Compute costs passed to [`gpu`](Self::gpu) / [`cpu`](Self::cpu) are
    /// multiplied by a default work scale of 3.0: the paper's inputs run
    /// over a billion instructions across footprints of tens of MB, i.e.
    /// several tens of dynamic instructions per data byte, and the
    /// multiplier brings the models' nominal per-element costs to that
    /// instructions-per-byte regime. Benchmarks whose costs were calibrated
    /// directly against the paper (the kmeans case study) override it with
    /// [`work_scale`](Self::work_scale).
    pub fn new(name: &str) -> Self {
        PipelineBuilder {
            name: name.to_owned(),
            buffers: Vec::new(),
            stages: Vec::new(),
            work_scale: 3.0,
        }
    }

    /// Overrides the compute-cost multiplier (see [`new`](Self::new)).
    pub fn work_scale(&mut self, w: f64) -> &mut Self {
        assert!(w > 0.0 && w.is_finite(), "work scale must be positive");
        self.work_scale = w;
        self
    }

    /// Declares a buffer with full control.
    pub fn buffer(
        &mut self,
        name: &str,
        bytes: u64,
        elem_bytes: u32,
        init: BufferInit,
        mirrored: bool,
    ) -> BufferId {
        self.buffers.push(BufferSpec {
            name: name.to_owned(),
            bytes,
            elem_bytes,
            init,
            mirrored,
        });
        BufferId(self.buffers.len() - 1)
    }

    /// A host-initialized, mirrored buffer of 4-byte elements (the common
    /// input-array case).
    pub fn host(&mut self, name: &str, bytes: u64) -> BufferId {
        self.buffer(name, bytes, 4, BufferInit::Host, true)
    }

    /// A host-initialized, mirrored buffer with an explicit element size.
    pub fn host_elems(&mut self, name: &str, bytes: u64, elem_bytes: u32) -> BufferId {
        self.buffer(name, bytes, elem_bytes, BufferInit::Host, true)
    }

    /// A GPU-produced result buffer that is mirrored back to the host.
    pub fn result(&mut self, name: &str, bytes: u64) -> BufferId {
        self.buffer(name, bytes, 4, BufferInit::Gpu, true)
    }

    /// A GPU-only temporary (never mirrored, never copied; first touched by
    /// a kernel — the page-fault-prone kind on a heterogeneous processor).
    pub fn gpu_temp(&mut self, name: &str, bytes: u64) -> BufferId {
        self.buffer(name, bytes, 4, BufferInit::Gpu, false)
    }

    /// Appends an elidable host-to-device copy of the whole buffer.
    pub fn h2d(&mut self, buf: BufferId) -> &mut Self {
        self.copy(buf, CopyDir::H2D, None, true)
    }

    /// Appends an elidable device-to-host copy of the whole buffer.
    pub fn d2h(&mut self, buf: BufferId) -> &mut Self {
        self.copy(buf, CopyDir::D2H, None, true)
    }

    /// Appends an elidable partial copy.
    pub fn copy_bytes(&mut self, buf: BufferId, dir: CopyDir, bytes: u64) -> &mut Self {
        self.copy(buf, dir, Some(bytes), true)
    }

    /// Appends a copy the elimination pass cannot remove (double-buffer
    /// shuffles, re-packed data — the "limited-copy" residue).
    pub fn sticky_copy(&mut self, buf: BufferId, dir: CopyDir, bytes: Option<u64>) -> &mut Self {
        self.copy(buf, dir, bytes, false)
    }

    fn copy(
        &mut self,
        buf: BufferId,
        dir: CopyDir,
        bytes: Option<u64>,
        elidable: bool,
    ) -> &mut Self {
        self.stages.push(Stage::Copy(CopyStage {
            buf,
            dir,
            bytes,
            elidable,
        }));
        self
    }

    /// Appends a GPU kernel: `threads` total, `ipt` instructions and `fpt`
    /// FLOPs per thread. Returns a handle to attach patterns.
    pub fn gpu(&mut self, name: &str, threads: u64, ipt: f64, fpt: f64) -> StageHandle<'_> {
        self.compute(name, ExecKind::Gpu, threads, ipt, fpt)
    }

    /// Appends a CPU stage (single-threaded unless `.threads()` overrides).
    pub fn cpu(&mut self, name: &str, work_items: u64, ipt: f64, fpt: f64) -> StageHandle<'_> {
        let w = self.work_scale;
        let mut h = self.compute(name, ExecKind::Cpu, 1, 0.0, 0.0);
        // CPU stages express work as items processed serially.
        let stage = h.stage();
        stage.instructions = (work_items as f64 * ipt * w) as u64;
        stage.flops = (work_items as f64 * fpt * w) as u64;
        h
    }

    fn compute(
        &mut self,
        name: &str,
        exec: ExecKind,
        threads: u64,
        ipt: f64,
        fpt: f64,
    ) -> StageHandle<'_> {
        self.stages.push(Stage::Compute(ComputeStage {
            name: name.to_owned(),
            exec,
            threads,
            threads_per_cta: 256,
            scratch_per_cta: 0,
            instructions: (threads as f64 * ipt * self.work_scale) as u64,
            flops: (threads as f64 * fpt * self.work_scale) as u64,
            patterns: Vec::new(),
            chunkable: true,
            interleave_patterns: false,
        }));
        let idx = self.stages.len() - 1;
        StageHandle { builder: self, idx }
    }

    /// Finishes the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline fails validation — benchmark definitions are
    /// static, so an invalid one is a programming error.
    pub fn build(self) -> Pipeline {
        let p = Pipeline {
            name: self.name,
            buffers: self.buffers,
            stages: self.stages,
        };
        if let Err(e) = p.validate() {
            panic!("invalid pipeline: {e}");
        }
        p
    }
}

/// Chaining handle for the most recently added compute stage.
#[derive(Debug)]
pub struct StageHandle<'a> {
    builder: &'a mut PipelineBuilder,
    idx: usize,
}

impl StageHandle<'_> {
    fn stage(&mut self) -> &mut ComputeStage {
        match &mut self.builder.stages[self.idx] {
            Stage::Compute(c) => c,
            Stage::Copy(_) => unreachable!("stage handle always points at a compute stage"),
        }
    }

    /// Sets the GPU CTA shape.
    pub fn cta(mut self, threads_per_cta: u32, scratch_per_cta: u64) -> Self {
        let s = self.stage();
        s.threads_per_cta = threads_per_cta;
        s.scratch_per_cta = scratch_per_cta;
        self
    }

    /// Marks the stage non-chunkable (wide cross-chunk data dependencies).
    pub fn serial(mut self) -> Self {
        self.stage().chunkable = false;
        self
    }

    /// Sets CPU-side software threading.
    pub fn threads(mut self, n: u64) -> Self {
        self.stage().threads = n;
        self
    }

    /// Attaches a read pattern that follows chunking.
    pub fn reads(self, buf: BufferId, pattern: Pattern) -> Self {
        self.attach(buf, AccessKind::Read, pattern, true)
    }

    /// Attaches a read pattern repeated in full by every chunk (broadcast
    /// tables, whole-graph structures).
    pub fn reads_all(self, buf: BufferId, pattern: Pattern) -> Self {
        self.attach(buf, AccessKind::Read, pattern, false)
    }

    /// Attaches a write pattern that follows chunking.
    pub fn writes(self, buf: BufferId, pattern: Pattern) -> Self {
        self.attach(buf, AccessKind::Write, pattern, true)
    }

    /// Attaches a write pattern repeated in full by every chunk.
    pub fn writes_all(self, buf: BufferId, pattern: Pattern) -> Self {
        self.attach(buf, AccessKind::Write, pattern, false)
    }

    fn attach(mut self, buf: BufferId, kind: AccessKind, pattern: Pattern, follows: bool) -> Self {
        self.stage().patterns.push(PatternInstance {
            buf,
            kind,
            pattern,
            follows_chunk: follows,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scale_override() {
        let mut b = PipelineBuilder::new("test/ws");
        let x = b.host("x", 4096);
        b.work_scale(1.0);
        b.gpu("k", 1000, 7.0, 2.0)
            .reads(x, Pattern::Stream { passes: 1 });
        let p = b.build();
        let k = p.stages[0].as_compute().unwrap();
        assert_eq!(k.instructions, 7000);
        assert_eq!(k.flops, 2000);
    }

    #[test]
    fn dim_floor_is_small() {
        assert_eq!(Scale::TEST.dim(1100), 311);
        assert_eq!(Scale::PAPER.dim(1100), 1100);
        assert_eq!(Scale::new(0.0001).dim(1100), 256);
    }

    #[test]
    fn scale_floors() {
        assert_eq!(Scale::TEST.n(1000), 4096);
        assert_eq!(Scale::PAPER.n(1_000_000), 1_000_000);
        assert_eq!(Scale::TEST.small(2), 1);
        assert!(Scale::new(0.5).n(1_000_000) == 500_000);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn scale_rejects_zero() {
        let _ = Scale::new(0.0);
    }

    #[test]
    fn builder_assembles_valid_pipeline() {
        let mut b = PipelineBuilder::new("test/demo");
        let input = b.host("input", 1 << 20);
        let out = b.result("out", 1 << 18);
        b.h2d(input);
        b.gpu("k", 1 << 16, 10.0, 4.0)
            .cta(128, 1024)
            .reads(input, Pattern::Stream { passes: 1 })
            .writes(out, Pattern::Stream { passes: 1 });
        b.d2h(out);
        b.cpu("post", 1 << 10, 20.0, 1.0)
            .serial()
            .reads(out, Pattern::Point { count: 1 << 10 });
        let p = b.build();
        assert_eq!(p.compute_stages(), 2);
        assert_eq!(p.copy_stages(), 2);
        assert_eq!(p.residual_copies(), 0);
        let kernel = p.stages[1].as_compute().unwrap();
        assert_eq!(kernel.threads_per_cta, 128);
        // Costs carry the default 3.0 work-scale multiplier (see `new`).
        assert_eq!(kernel.instructions, 3 * 10 * (1 << 16));
        assert!(kernel.chunkable);
        let post = p.stages[3].as_compute().unwrap();
        assert!(!post.chunkable);
        assert_eq!(post.instructions, 3 * 20 * 1024);
    }

    #[test]
    fn sticky_copy_is_residual() {
        let mut b = PipelineBuilder::new("test/sticky");
        let buf = b.host("x", 4096);
        b.sticky_copy(buf, CopyDir::H2D, None);
        b.gpu("k", 4096, 1.0, 0.0)
            .reads(buf, Pattern::Stream { passes: 1 });
        let p = b.build();
        assert_eq!(p.residual_copies(), 1);
    }

    #[test]
    #[should_panic(expected = "invalid pipeline")]
    fn build_panics_on_invalid() {
        let b = PipelineBuilder::new("test/empty");
        let _ = b.build();
    }
}
