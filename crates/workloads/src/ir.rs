//! The benchmark intermediate representation.
//!
//! Each benchmark is described *as written for a discrete GPU*: a list of
//! logical buffers and a bulk-synchronous sequence of stages (CPU stages,
//! GPU kernels, and explicit memory copies). The `heteropipe` core crate
//! lowers this IR onto a platform (allocating mirrored or shared address
//! ranges) and an organization (serial, asynchronous streams, or chunked
//! producer-consumer), which is exactly the porting exercise the paper
//! performs on the real benchmarks.

use std::fmt;

use crate::patterns::Pattern;
use heteropipe_mem::AccessKind;

/// Index of a buffer within its [`Pipeline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub usize);

/// Who materializes a buffer's initial contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferInit {
    /// The CPU initializes it before the region of interest; its pages are
    /// mapped when the ROI starts.
    Host,
    /// The GPU produces it (temporary or output data); in the heterogeneous
    /// processor its pages are unmapped until first GPU touch, which raises
    /// CPU-handled page faults.
    Gpu,
}

/// A logical data buffer of the benchmark.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BufferSpec {
    /// Human-readable name ("features", "graph.edges", …).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Element size used by access patterns (4 or 8 typically).
    pub elem_bytes: u32,
    /// Who writes it first.
    pub init: BufferInit,
    /// Whether the copy-version benchmark mirrors it into the other memory
    /// space (allocating twice and copying). GPU-temporary buffers are not
    /// mirrored.
    pub mirrored: bool,
}

/// Direction of an explicit memory copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyDir {
    /// Host (CPU memory) to device (GPU memory).
    H2D,
    /// Device to host.
    D2H,
}

impl fmt::Display for CopyDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CopyDir::H2D => write!(f, "H2D"),
            CopyDir::D2H => write!(f, "D2H"),
        }
    }
}

/// An explicit `cudaMemcpy`-style stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyStage {
    /// The buffer being moved.
    pub buf: BufferId,
    /// Transfer direction.
    pub dir: CopyDir,
    /// Bytes moved; `None` means the whole buffer.
    pub bytes: Option<u64>,
    /// Whether the copy-elimination pass (CUDA-library interception plus
    /// the paper's manual modifications) can remove this copy. Copies that
    /// survive model the paper's "limited-copy" residue.
    pub elidable: bool,
}

/// Whether a compute stage runs on CPU cores or as a GPU kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecKind {
    /// Runs on the CPU cores.
    Cpu,
    /// Runs as a GPU kernel.
    Gpu,
}

impl fmt::Display for ExecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecKind::Cpu => write!(f, "CPU"),
            ExecKind::Gpu => write!(f, "GPU"),
        }
    }
}

/// One memory access pattern of a compute stage against one buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternInstance {
    /// The accessed buffer.
    pub buf: BufferId,
    /// Read or write.
    pub kind: AccessKind,
    /// The access shape.
    pub pattern: Pattern,
    /// Whether this pattern follows the stage's data-parallel chunking
    /// (sliced per chunk) or is repeated in full by every chunk (small
    /// broadcast data, global worklists).
    pub follows_chunk: bool,
}

/// A CPU stage or GPU kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeStage {
    /// Stage name ("distance_kernel", "recenter", …).
    pub name: String,
    /// Where it runs.
    pub exec: ExecKind,
    /// Total software threads (GPU grid size; 1 for serial CPU code).
    pub threads: u64,
    /// GPU CTA width (ignored for CPU stages).
    pub threads_per_cta: u32,
    /// GPU scratch (shared) memory per CTA in bytes.
    pub scratch_per_cta: u64,
    /// Dynamic instructions for the whole stage.
    pub instructions: u64,
    /// Floating-point operations for the whole stage.
    pub flops: u64,
    /// Memory access patterns.
    pub patterns: Vec<PatternInstance>,
    /// Whether the stage is data-parallel along its principal buffers and
    /// can be split into chunks (kernel fission / chunked
    /// producer-consumer).
    pub chunkable: bool,
    /// Whether the stage's access patterns interleave tile-wise (fused
    /// kernels produce and consume each tile in close temporal proximity)
    /// rather than running one pattern after another.
    pub interleave_patterns: bool,
}

/// One stage of the bulk-synchronous pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Stage {
    /// An explicit memory copy.
    Copy(CopyStage),
    /// A CPU stage or GPU kernel.
    Compute(ComputeStage),
}

impl Stage {
    /// The compute stage, if this is one.
    pub fn as_compute(&self) -> Option<&ComputeStage> {
        match self {
            Stage::Compute(c) => Some(c),
            Stage::Copy(_) => None,
        }
    }

    /// The copy stage, if this is one.
    pub fn as_copy(&self) -> Option<&CopyStage> {
        match self {
            Stage::Copy(c) => Some(c),
            Stage::Compute(_) => None,
        }
    }
}

/// A whole benchmark: buffers plus the stage sequence of its region of
/// interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Pipeline {
    /// Benchmark name ("rodinia/kmeans").
    pub name: String,
    /// All logical buffers.
    pub buffers: Vec<BufferSpec>,
    /// The bulk-synchronous stage sequence.
    pub stages: Vec<Stage>,
}

impl Pipeline {
    /// Total bytes across all buffers (one instance each; mirroring is a
    /// platform decision).
    pub fn logical_bytes(&self) -> u64 {
        self.buffers.iter().map(|b| b.bytes).sum()
    }

    /// Number of compute stages.
    pub fn compute_stages(&self) -> usize {
        self.stages
            .iter()
            .filter(|s| s.as_compute().is_some())
            .count()
    }

    /// Number of copy stages.
    pub fn copy_stages(&self) -> usize {
        self.stages.iter().filter(|s| s.as_copy().is_some()).count()
    }

    /// Number of copy stages that the elimination pass cannot remove.
    pub fn residual_copies(&self) -> usize {
        self.stages
            .iter()
            .filter_map(Stage::as_copy)
            .filter(|c| !c.elidable)
            .count()
    }

    /// The buffer spec behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn buffer(&self, id: BufferId) -> &BufferSpec {
        &self.buffers[id.0]
    }

    /// Validates internal consistency (buffer ids in range, stages
    /// non-empty, positive sizes). Returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err(format!("{}: pipeline has no stages", self.name));
        }
        for (i, b) in self.buffers.iter().enumerate() {
            if b.bytes == 0 {
                return Err(format!("{}: buffer {i} ({}) is empty", self.name, b.name));
            }
            if b.elem_bytes == 0 || b.elem_bytes as u64 > b.bytes {
                return Err(format!(
                    "{}: buffer {} has bad elem size",
                    self.name, b.name
                ));
            }
        }
        for (i, s) in self.stages.iter().enumerate() {
            match s {
                Stage::Copy(c) => {
                    if c.buf.0 >= self.buffers.len() {
                        return Err(format!("{}: stage {i} copies unknown buffer", self.name));
                    }
                    if !self.buffers[c.buf.0].mirrored {
                        return Err(format!(
                            "{}: stage {i} copies unmirrored buffer {}",
                            self.name, self.buffers[c.buf.0].name
                        ));
                    }
                }
                Stage::Compute(c) => {
                    if c.threads == 0 {
                        return Err(format!("{}: stage {} has no threads", self.name, c.name));
                    }
                    if c.exec == ExecKind::Gpu && c.threads_per_cta == 0 {
                        return Err(format!("{}: kernel {} has no CTA width", self.name, c.name));
                    }
                    if c.patterns.is_empty() {
                        return Err(format!("{}: stage {} touches no memory", self.name, c.name));
                    }
                    for p in &c.patterns {
                        if p.buf.0 >= self.buffers.len() {
                            return Err(format!(
                                "{}: stage {} uses unknown buffer",
                                self.name, c.name
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_pipeline() -> Pipeline {
        Pipeline {
            name: "test/tiny".into(),
            buffers: vec![BufferSpec {
                name: "data".into(),
                bytes: 4096,
                elem_bytes: 4,
                init: BufferInit::Host,
                mirrored: true,
            }],
            stages: vec![
                Stage::Copy(CopyStage {
                    buf: BufferId(0),
                    dir: CopyDir::H2D,
                    bytes: None,
                    elidable: true,
                }),
                Stage::Compute(ComputeStage {
                    name: "k".into(),
                    exec: ExecKind::Gpu,
                    threads: 1024,
                    threads_per_cta: 256,
                    scratch_per_cta: 0,
                    instructions: 10_000,
                    flops: 2_000,
                    patterns: vec![PatternInstance {
                        buf: BufferId(0),
                        kind: AccessKind::Read,
                        pattern: Pattern::Stream { passes: 1 },
                        follows_chunk: true,
                    }],
                    chunkable: true,
                    interleave_patterns: false,
                }),
            ],
        }
    }

    #[test]
    fn valid_pipeline_passes() {
        assert_eq!(tiny_pipeline().validate(), Ok(()));
    }

    #[test]
    fn counts() {
        let p = tiny_pipeline();
        assert_eq!(p.compute_stages(), 1);
        assert_eq!(p.copy_stages(), 1);
        assert_eq!(p.residual_copies(), 0);
        assert_eq!(p.logical_bytes(), 4096);
        assert_eq!(p.buffer(BufferId(0)).name, "data");
    }

    #[test]
    fn validate_rejects_unknown_buffer() {
        let mut p = tiny_pipeline();
        if let Stage::Compute(c) = &mut p.stages[1] {
            c.patterns[0].buf = BufferId(9);
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_copy_of_unmirrored() {
        let mut p = tiny_pipeline();
        p.buffers[0].mirrored = false;
        assert!(p.validate().unwrap_err().contains("unmirrored"));
    }

    #[test]
    fn validate_rejects_empty_stage_list() {
        let mut p = tiny_pipeline();
        p.stages.clear();
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_threads() {
        let mut p = tiny_pipeline();
        if let Stage::Compute(c) = &mut p.stages[1] {
            c.threads = 0;
        }
        assert!(p.validate().is_err());
    }

    #[test]
    fn stage_accessors() {
        let p = tiny_pipeline();
        assert!(p.stages[0].as_copy().is_some());
        assert!(p.stages[0].as_compute().is_none());
        assert!(p.stages[1].as_compute().is_some());
        assert_eq!(CopyDir::H2D.to_string(), "H2D");
        assert_eq!(ExecKind::Gpu.to_string(), "GPU");
    }
}
