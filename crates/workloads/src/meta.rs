//! Benchmark metadata: suites and the producer-consumer construct census
//! behind the paper's Table II.

use std::fmt;

/// The four open-source GPU computing benchmark suites the paper studies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Suite {
    /// LonestarGPU: irregular, graph-heavy, worklist-driven benchmarks.
    Lonestar,
    /// Pannotia: OpenCL graph analytics (ported to CUDA for the study).
    Pannotia,
    /// Parboil: scientific and commercial throughput computing.
    Parboil,
    /// Rodinia: heterogeneous computing kernels across domains.
    Rodinia,
}

impl Suite {
    /// All suites in the paper's table order.
    pub const ALL: [Suite; 4] = [
        Suite::Lonestar,
        Suite::Pannotia,
        Suite::Parboil,
        Suite::Rodinia,
    ];
}

impl fmt::Display for Suite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Suite::Lonestar => write!(f, "Lonestar"),
            Suite::Pannotia => write!(f, "Pannotia"),
            Suite::Parboil => write!(f, "Parboil"),
            Suite::Rodinia => write!(f, "Rodinia"),
        }
    }
}

/// Static structure flags for one benchmark (the columns of Table II, plus
/// study bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchMeta {
    /// Owning suite.
    pub suite: Suite,
    /// Benchmark name as the paper abbreviates it.
    pub name: &'static str,
    /// Has multiple producer-consumer pipeline interactions ("P-C Comm."):
    /// CPU stages, GPU kernels, or CPU-GPU memory copies feeding each
    /// other.
    pub pc_comm: bool,
    /// Could be restructured to run pipeline stages concurrently or in
    /// closer temporal proximity ("Pipe Paral.").
    pub pipe_parallel: bool,
    /// Contains regular (dense, structured) P-C constructs.
    pub regular: bool,
    /// Contains irregular (graph/pointer) P-C constructs.
    pub irregular: bool,
    /// Uses software worklist queues.
    pub sw_queue: bool,
    /// Whether the benchmark runs in the simulation environment and does
    /// non-trivial work (the paper examines 46 of the 58).
    pub examined: bool,
    /// Whether shared (limited-copy) allocations of this benchmark lose
    /// cache-line alignment and inflate GPU access counts (the `*`
    /// benchmarks of Fig. 5).
    pub misalignment_sensitive: bool,
}

impl BenchMeta {
    /// `suite/name`, the canonical identifier used across experiments.
    pub fn full_name(&self) -> String {
        format!("{}/{}", self.suite.to_string().to_lowercase(), self.name)
    }
}

/// One suite's row of Table II.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CensusRow {
    /// Benchmarks in the suite.
    pub benchmarks: u32,
    /// With multiple P-C interactions.
    pub pc_comm: u32,
    /// Pipeline-parallelizable.
    pub pipe_parallel: u32,
    /// With regular constructs.
    pub regular: u32,
    /// With irregular constructs.
    pub irregular: u32,
    /// With software queues.
    pub sw_queue: u32,
}

impl CensusRow {
    /// Accumulates one benchmark into the row.
    pub fn add(&mut self, m: &BenchMeta) {
        self.benchmarks += 1;
        self.pc_comm += u32::from(m.pc_comm);
        self.pipe_parallel += u32::from(m.pipe_parallel);
        self.regular += u32::from(m.regular);
        self.irregular += u32::from(m.irregular);
        self.sw_queue += u32::from(m.sw_queue);
    }

    /// Sums another row into this one.
    pub fn merge(&mut self, other: &CensusRow) {
        self.benchmarks += other.benchmarks;
        self.pc_comm += other.pc_comm;
        self.pipe_parallel += other.pipe_parallel;
        self.regular += other.regular;
        self.irregular += other.irregular;
        self.sw_queue += other.sw_queue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_display() {
        assert_eq!(Suite::Lonestar.to_string(), "Lonestar");
        assert_eq!(Suite::ALL.len(), 4);
    }

    #[test]
    fn full_name_is_lowercased_suite() {
        let m = BenchMeta {
            suite: Suite::Rodinia,
            name: "kmeans",
            pc_comm: true,
            pipe_parallel: true,
            regular: true,
            irregular: false,
            sw_queue: false,
            examined: true,
            misalignment_sensitive: false,
        };
        assert_eq!(m.full_name(), "rodinia/kmeans");
    }

    #[test]
    fn census_row_accumulates() {
        let mut row = CensusRow::default();
        let m = BenchMeta {
            suite: Suite::Lonestar,
            name: "bfs",
            pc_comm: true,
            pipe_parallel: true,
            regular: true,
            irregular: true,
            sw_queue: false,
            examined: true,
            misalignment_sensitive: false,
        };
        row.add(&m);
        row.add(&BenchMeta {
            sw_queue: true,
            pc_comm: false,
            ..m
        });
        assert_eq!(row.benchmarks, 2);
        assert_eq!(row.pc_comm, 1);
        assert_eq!(row.sw_queue, 1);
        let mut total = CensusRow::default();
        total.merge(&row);
        total.merge(&row);
        assert_eq!(total.benchmarks, 4);
    }
}
