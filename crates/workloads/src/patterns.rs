//! Memory access pattern primitives.
//!
//! The 46 workload models compose their kernels and CPU stages from these
//! shapes. Each pattern emits a deterministic stream of cache-line accesses
//! over a buffer range. Emission is at *line* granularity — for GPU kernels
//! the per-warp coalescing math is folded into each pattern (validated
//! against the explicit `heteropipe-gpu` coalescer in tests), and for CPU
//! stages consecutive element accesses to one line count once, matching how
//! both models' caches see traffic.

use heteropipe_mem::{AddrRange, LineAddr, LINE_BYTES};
use heteropipe_sim::SplitMix64;

/// An access shape over a buffer range.
#[derive(Debug, Clone, PartialEq)]
pub enum Pattern {
    /// Sequential sweep(s) over the whole range: the canonical regular
    /// streaming access of dense kernels.
    Stream {
        /// Number of full sweeps.
        passes: u32,
    },
    /// Sweep touching every `stride`-th element.
    Strided {
        /// Element stride.
        stride: u32,
    },
    /// Row-wise sweep where each row also reads its neighbours (5-point
    /// stencil shape): row `r` touches rows `r-1, r, r+1`.
    Stencil {
        /// Elements per row.
        row_elems: u32,
    },
    /// `count` accesses to uniformly random lines within the leading
    /// `region` fraction of the range: irregular gather/scatter.
    Gather {
        /// Total random accesses.
        count: u64,
        /// Fraction of the range they fall in (1.0 = whole buffer).
        region: f64,
    },
    /// Sequential sweep that touches each line independently with
    /// probability `fraction`: sparse structure traversal (the paper's
    /// bfs/fw observation that CPU+GPU touch less than a third of copied
    /// data).
    SparseSweep {
        /// Probability a line is touched.
        fraction: f64,
    },
    /// The first `count` elements only (scalar results, k centers, queue
    /// heads).
    Point {
        /// Elements accessed.
        count: u64,
    },
    /// CSR-style neighbour traversal: a sequential sweep of the range
    /// interleaved with `degree` skew-distributed jumps per element,
    /// biased toward nearby lines (community locality).
    Neighbors {
        /// Average neighbour accesses per element.
        degree: f64,
    },
}

impl Pattern {
    /// Emits the pattern's line accesses over `range` into `out`.
    ///
    /// `elem_bytes` scales element-indexed shapes; `rng` drives the random
    /// shapes deterministically.
    pub fn emit(
        &self,
        range: AddrRange,
        elem_bytes: u32,
        rng: &mut SplitMix64,
        out: &mut Vec<LineAddr>,
    ) {
        if range.is_empty() {
            return;
        }
        let elems = (range.bytes() / elem_bytes as u64).max(1);
        match *self {
            Pattern::Stream { passes } => {
                for _ in 0..passes {
                    out.extend(range.lines());
                }
            }
            Pattern::Strided { stride } => {
                let stride = stride.max(1) as u64;
                let mut last = None;
                let mut idx = 0;
                while idx < elems {
                    let line = range.start().offset(idx * elem_bytes as u64).line();
                    if last != Some(line) {
                        out.push(line);
                        last = Some(line);
                    }
                    idx += stride;
                }
            }
            Pattern::Stencil { row_elems } => {
                let row_bytes = row_elems.max(1) as u64 * elem_bytes as u64;
                let rows = (range.bytes() / row_bytes).max(1);
                for r in 0..rows {
                    let lo = r.saturating_sub(1);
                    let hi = (r + 1).min(rows - 1);
                    for rr in lo..=hi {
                        let row = range.slice(rr * row_bytes, row_bytes);
                        out.extend(row.lines());
                    }
                }
            }
            Pattern::Gather { count, region } => {
                let lines = range.line_count();
                let span = ((lines as f64 * region.clamp(0.0, 1.0)) as u64).max(1);
                let first = range.start().line().0;
                for _ in 0..count {
                    out.push(LineAddr(first + rng.below(span)));
                }
            }
            Pattern::SparseSweep { fraction } => {
                for line in range.lines() {
                    if rng.chance(fraction) {
                        out.push(line);
                    }
                }
            }
            Pattern::Point { count } => {
                let lines = range.line_count();
                let count_lines =
                    ((count * elem_bytes as u64).div_ceil(LINE_BYTES)).clamp(1, lines);
                let first = range.start().line().0;
                out.extend((first..first + count_lines).map(LineAddr));
            }
            Pattern::Neighbors { degree } => {
                let lines = range.line_count();
                let first = range.start().line().0;
                let elems_per_line = (LINE_BYTES / elem_bytes as u64).max(1);
                for (i, line) in range.lines().enumerate() {
                    out.push(line);
                    // Per line of elements, emit degree * elems_per_line
                    // neighbour jumps, skewed toward nearby lines.
                    let jumps = (degree * elems_per_line as f64) as u64
                        + u64::from(rng.chance(degree.fract()));
                    for _ in 0..jumps {
                        let dist = rng.skewed_below(lines);
                        let target = if rng.chance(0.5) {
                            (i as u64 + dist) % lines
                        } else {
                            (i as u64 + lines - dist % lines) % lines
                        };
                        out.push(LineAddr(first + target));
                    }
                }
            }
        }
    }

    /// Expected number of line accesses this pattern emits over `range`
    /// (exact for deterministic shapes, expectation for random ones). Used
    /// for sizing and for fast cross-checks.
    pub fn expected_accesses(&self, range: AddrRange, elem_bytes: u32) -> f64 {
        if range.is_empty() {
            return 0.0;
        }
        let lines = range.line_count() as f64;
        let elems = (range.bytes() / elem_bytes as u64).max(1) as f64;
        match *self {
            Pattern::Stream { passes } => lines * passes as f64,
            Pattern::Strided { stride } => {
                let touched = elems / stride.max(1) as f64;
                touched.min(lines).max(1.0)
            }
            Pattern::Stencil { .. } => 3.0 * lines,
            Pattern::Gather { count, .. } => count as f64,
            Pattern::SparseSweep { fraction } => lines * fraction,
            Pattern::Point { count } => {
                ((count * elem_bytes as u64) as f64 / LINE_BYTES as f64).clamp(1.0, lines)
            }
            Pattern::Neighbors { degree } => {
                let elems_per_line = (LINE_BYTES as f64 / elem_bytes as f64).max(1.0);
                lines * (1.0 + degree * elems_per_line)
            }
        }
    }

    /// How the pattern behaves when its stage is chunked: shapes that
    /// follow the data get sliced by the caller; whole-structure random
    /// shapes scale their access count by the chunk `fraction`.
    pub fn chunked(&self, fraction: f64) -> Pattern {
        match *self {
            Pattern::Gather { count, region } => Pattern::Gather {
                count: ((count as f64 * fraction).round() as u64).max(1),
                region,
            },
            ref p => p.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heteropipe_mem::Addr;

    fn range_of(bytes: u64) -> AddrRange {
        AddrRange::new(Addr(1 << 20), bytes)
    }

    fn emit(p: &Pattern, range: AddrRange) -> Vec<LineAddr> {
        let mut rng = SplitMix64::new(7);
        let mut out = Vec::new();
        p.emit(range, 4, &mut rng, &mut out);
        out
    }

    #[test]
    fn stream_emits_every_line_in_order() {
        let r = range_of(1024);
        let out = emit(&Pattern::Stream { passes: 2 }, r);
        assert_eq!(out.len(), 16);
        assert_eq!(out[0], r.start().line());
        assert_eq!(out[..8], out[8..]);
    }

    #[test]
    fn strided_dedups_within_line() {
        let r = range_of(4096);
        // Stride 4 with 4-byte elems: 16 B steps, 8 touches per 128 B line.
        let out = emit(&Pattern::Strided { stride: 4 }, r);
        assert_eq!(out.len(), 32); // every line once
                                   // Stride 64: 256 B steps — every other line.
        let out = emit(&Pattern::Strided { stride: 64 }, r);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn stencil_revisits_neighbour_rows() {
        let r = range_of(4 * 512 * 4); // 4 rows of 512 four-byte elems
        let out = emit(&Pattern::Stencil { row_elems: 512 }, r);
        // Interior rows are visited 3 times, edges twice: (2+3+3+2) rows
        // of 16 lines.
        assert_eq!(out.len(), 10 * 16);
    }

    #[test]
    fn gather_stays_in_region() {
        let r = range_of(128 * 1000);
        let out = emit(
            &Pattern::Gather {
                count: 500,
                region: 0.1,
            },
            r,
        );
        assert_eq!(out.len(), 500);
        let first = r.start().line().0;
        for l in out {
            assert!(l.0 >= first && l.0 < first + 100, "line outside hot region");
        }
    }

    #[test]
    fn sparse_sweep_touches_roughly_fraction() {
        let r = range_of(128 * 10_000);
        let out = emit(&Pattern::SparseSweep { fraction: 0.3 }, r);
        let frac = out.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "{frac}");
    }

    #[test]
    fn point_touches_prefix() {
        let r = range_of(128 * 100);
        let out = emit(&Pattern::Point { count: 64 }, r); // 256 B = 2 lines
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], r.start().line());
    }

    #[test]
    fn neighbors_emit_sweep_plus_jumps() {
        let r = range_of(128 * 1000);
        let out = emit(&Pattern::Neighbors { degree: 0.1 }, r);
        // 1000 sweep lines + ~0.1 * 32 elems/line * 1000 lines of jumps.
        assert!(out.len() > 3_000 && out.len() < 5_500, "{}", out.len());
    }

    #[test]
    fn expected_matches_emitted_for_deterministic_shapes() {
        let r = range_of(128 * 256 + 64);
        for p in [
            Pattern::Stream { passes: 3 },
            Pattern::Strided { stride: 7 },
            Pattern::Stencil { row_elems: 128 },
            Pattern::Point { count: 100 },
        ] {
            let emitted = emit(&p, r).len() as f64;
            let expected = p.expected_accesses(r, 4);
            let err = (emitted - expected).abs() / emitted.max(1.0);
            assert!(err < 0.35, "{p:?}: emitted {emitted}, expected {expected}");
        }
    }

    #[test]
    fn expected_close_for_random_shapes() {
        let r = range_of(128 * 4096);
        for p in [
            Pattern::Gather {
                count: 10_000,
                region: 1.0,
            },
            Pattern::SparseSweep { fraction: 0.5 },
            Pattern::Neighbors { degree: 0.2 },
        ] {
            let emitted = emit(&p, r).len() as f64;
            let expected = p.expected_accesses(r, 4);
            let err = (emitted - expected).abs() / expected;
            assert!(err < 0.1, "{p:?}: emitted {emitted}, expected {expected}");
        }
    }

    #[test]
    fn chunked_gather_scales_count() {
        let p = Pattern::Gather {
            count: 1000,
            region: 1.0,
        };
        match p.chunked(0.25) {
            Pattern::Gather { count, .. } => assert_eq!(count, 250),
            other => panic!("unexpected {other:?}"),
        }
        // Deterministic shapes are unchanged (the range itself is sliced).
        assert_eq!(
            Pattern::Stream { passes: 2 }.chunked(0.5),
            Pattern::Stream { passes: 2 }
        );
    }

    #[test]
    fn emission_is_deterministic() {
        let r = range_of(128 * 2048);
        let p = Pattern::Gather {
            count: 5_000,
            region: 0.7,
        };
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.emit(r, 4, &mut SplitMix64::new(3), &mut a);
        p.emit(r, 4, &mut SplitMix64::new(3), &mut b);
        assert_eq!(a, b);
    }

    /// Cross-check the folded-in coalescing math against the explicit
    /// per-warp coalescer: a misaligned stream of 4-byte elements produces
    /// exactly the pattern's line count.
    #[test]
    fn stream_matches_explicit_coalescer() {
        use heteropipe_gpu::coalesce_warp;
        let r = AddrRange::new(Addr(64), 4096); // misaligned range
        let stream_lines = emit(&Pattern::Stream { passes: 1 }, r).len();
        // Explicit coalescing of every warp's element addresses.
        let elems: Vec<Addr> = (0..r.bytes() / 4)
            .map(|i| r.start().offset(i * 4))
            .collect();
        let mut out = Vec::new();
        for warp in elems.chunks(32) {
            coalesce_warp(warp, &mut out);
        }
        out.dedup();
        assert_eq!(stream_lines, out.len());
    }

    #[test]
    fn no_pattern_escapes_its_range() {
        heteropipe_sim::check::cases(128, 0x9A77E28, |g| {
            let bytes = g.u64(256, 200_000);
            let pattern_sel = g.usize(0, 7);
            let seed = g.u64(0, 1000);
            let r = range_of(bytes);
            let p = match pattern_sel {
                0 => Pattern::Stream { passes: 1 },
                1 => Pattern::Strided { stride: 3 },
                2 => Pattern::Stencil { row_elems: 64 },
                3 => Pattern::Gather {
                    count: 100,
                    region: 1.0,
                },
                4 => Pattern::SparseSweep { fraction: 0.5 },
                5 => Pattern::Point { count: 10 },
                _ => Pattern::Neighbors { degree: 0.3 },
            };
            let mut out = Vec::new();
            p.emit(r, 4, &mut SplitMix64::new(seed), &mut out);
            let lo = r.start().line().0;
            let hi = lo + r.line_count();
            for l in out {
                assert!(l.0 >= lo && l.0 < hi);
            }
        });
    }
}
