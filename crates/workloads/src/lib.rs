//! # heteropipe-workloads
//!
//! Models of the 58 GPU computing benchmarks from the four open-source
//! suites the study characterizes (LonestarGPU, Pannotia, Parboil, Rodinia),
//! 46 of which are executable workload models.
//!
//! A workload model is *not* the benchmark's code: it is the benchmark's
//! **pipeline structure** — its buffers, its bulk-synchronous sequence of
//! CPU stages / GPU kernels / memory copies, and per-stage memory access
//! shapes and compute costs — which is precisely the level at which the
//! paper's characterization operates (footprints, access counts, component
//! activity, reuse classes, and the Eq. 1-4 analytical models). See
//! DESIGN.md §2 for the substitution argument.
//!
//! * [`ir`] — the pipeline IR (buffers, stages, copies).
//! * [`patterns`] — access-shape primitives stages are composed from.
//! * [`builder`] — fluent pipeline construction and input [`Scale`].
//! * [`suites`] — the per-benchmark models with their paper context.
//! * [`registry`] — lookup, enumeration, and the Table II census.
//!
//! # Example
//!
//! ```
//! use heteropipe_workloads::{registry, Scale};
//!
//! let kmeans = registry::find("rodinia/kmeans").unwrap();
//! let pipeline = kmeans.pipeline(Scale::TEST).unwrap();
//! assert!(pipeline.compute_stages() > 0);
//! let (_rows, total) = registry::census();
//! assert_eq!(total.benchmarks, 58);
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod common;
pub mod ir;
pub mod meta;
pub mod patterns;
pub mod registry;
pub mod suites;

pub use builder::{PipelineBuilder, Scale};
pub use ir::{
    BufferId, BufferInit, BufferSpec, ComputeStage, CopyDir, CopyStage, ExecKind, PatternInstance,
    Pipeline, Stage,
};
pub use meta::{BenchMeta, CensusRow, Suite};
pub use patterns::Pattern;
pub use registry::Workload;
