//! Shared building blocks for the benchmark models: CSR graphs, convergence
//! loops, and the small copies that implement CPU-side loop control.

use crate::builder::{PipelineBuilder, StageHandle};
use crate::ir::{BufferId, CopyDir};
use crate::patterns::Pattern;

/// The buffers of a CSR graph: row offsets, edge targets, and (optionally)
/// edge weights, plus a per-node property array.
#[derive(Debug, Clone, Copy)]
pub struct CsrGraph {
    /// Row offsets, `(n+1) * 4` bytes.
    pub offsets: BufferId,
    /// Edge targets, `m * 4` bytes.
    pub edges: BufferId,
    /// Edge weights (same shape as `edges`), if the algorithm is weighted.
    pub weights: Option<BufferId>,
    /// Per-node property (distance, level, rank, ...), `n * 4` bytes.
    pub props: BufferId,
    /// Node count.
    pub nodes: u64,
    /// Edge count.
    pub edges_count: u64,
}

impl CsrGraph {
    /// Declares the graph buffers on `b` with `n` nodes and average degree
    /// `deg`.
    pub fn declare(b: &mut PipelineBuilder, n: u64, deg: f64, weighted: bool) -> Self {
        let m = (n as f64 * deg) as u64;
        CsrGraph {
            offsets: b.host("graph.offsets", (n + 1) * 4),
            edges: b.host("graph.edges", m * 4),
            weights: weighted.then(|| b.host("graph.weights", m * 4)),
            props: b.host("graph.props", n * 4),
            nodes: n,
            edges_count: m,
        }
    }

    /// Copies the whole graph host-to-device (the upfront transfer of every
    /// discrete-GPU graph benchmark).
    pub fn h2d_all(&self, b: &mut PipelineBuilder) {
        b.h2d(self.offsets);
        b.h2d(self.edges);
        if let Some(w) = self.weights {
            b.h2d(w);
        }
        b.h2d(self.props);
    }

    /// Attaches the canonical irregular traversal patterns of one
    /// relaxation kernel to `h`: sweep the offsets, jump through edges with
    /// skewed locality, and read/write node properties irregularly.
    pub fn attach_traversal<'a>(&self, h: StageHandle<'a>, touched: f64) -> StageHandle<'a> {
        let h = if touched >= 1.0 {
            h.reads(self.offsets, Pattern::Stream { passes: 1 })
        } else {
            h.reads(self.offsets, Pattern::SparseSweep { fraction: touched })
        };
        let h = h.reads_all(
            self.edges,
            Pattern::Gather {
                count: (self.edges_count as f64 * touched) as u64,
                region: 1.0,
            },
        );
        let h = match self.weights {
            Some(w) => h.reads_all(
                w,
                Pattern::Gather {
                    count: (self.edges_count as f64 * touched) as u64,
                    region: 1.0,
                },
            ),
            None => h,
        };
        h.reads_all(
            self.props,
            Pattern::Gather {
                count: (self.edges_count as f64 * touched * 0.6) as u64,
                region: 1.0,
            },
        )
        .writes_all(
            self.props,
            Pattern::Gather {
                count: (self.nodes as f64 * touched * 0.4) as u64,
                region: 1.0,
            },
        )
    }
}

/// Adds the "outer-loop" control step common to iterative graph
/// benchmarks: copy a 4-byte convergence flag back to the host and run a
/// tiny serial CPU check (the paper's §V-A second class: the CPU launches
/// kernels and waits to decide whether to continue).
pub fn convergence_check(b: &mut PipelineBuilder, flag: BufferId, tag: &str) {
    b.copy_bytes(flag, CopyDir::D2H, 4);
    b.cpu(&format!("check_{tag}"), 64, 8.0, 0.0)
        .serial()
        .reads(flag, Pattern::Point { count: 1 });
}

/// Declares the 4-byte host-mirrored convergence flag used with
/// [`convergence_check`].
pub fn flag_buffer(b: &mut PipelineBuilder) -> BufferId {
    // Allocated as a full line; only the first word is used.
    b.host("flag", 128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PipelineBuilder;

    #[test]
    fn csr_declares_expected_buffers() {
        let mut b = PipelineBuilder::new("test/csr");
        let g = CsrGraph::declare(&mut b, 1000, 8.0, true);
        g.h2d_all(&mut b);
        let h = b.gpu("relax", 1000, 10.0, 1.0);
        g.attach_traversal(h, 1.0);
        let p = b.build();
        assert_eq!(p.buffers.len(), 4);
        assert_eq!(p.copy_stages(), 4);
        assert_eq!(g.edges_count, 8000);
        // Weighted traversal touches all four buffers.
        let k = p.stages.last().unwrap().as_compute().unwrap();
        assert_eq!(k.patterns.len(), 5);
    }

    #[test]
    fn unweighted_graph_skips_weights() {
        let mut b = PipelineBuilder::new("test/unweighted");
        let g = CsrGraph::declare(&mut b, 500, 4.0, false);
        assert!(g.weights.is_none());
        let h = b.gpu("bfs", 500, 5.0, 0.0);
        g.attach_traversal(h, 0.5);
        let p = b.build();
        assert_eq!(p.buffers.len(), 3);
    }

    #[test]
    fn convergence_check_adds_copy_and_cpu_stage() {
        let mut b = PipelineBuilder::new("test/conv");
        let g = CsrGraph::declare(&mut b, 256, 2.0, false);
        let flag = flag_buffer(&mut b);
        let h = b.gpu("k", 256, 1.0, 0.0);
        g.attach_traversal(h, 1.0);
        convergence_check(&mut b, flag, "round0");
        let p = b.build();
        assert_eq!(p.copy_stages(), 1);
        assert_eq!(p.compute_stages(), 2);
    }
}
