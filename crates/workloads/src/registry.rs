//! The workload registry: all 58 benchmarks of the four suites, the 46
//! executable models among them, and the Table II census.

use crate::builder::Scale;
use crate::ir::Pipeline;
use crate::meta::{BenchMeta, CensusRow, Suite};
use crate::suites;

/// One benchmark: its Table II metadata and, for the 46 examined ones, a
/// builder producing its pipeline model at a given scale.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Structure flags (Table II) and identity.
    pub meta: BenchMeta,
    build: Option<fn(Scale) -> Pipeline>,
}

impl Workload {
    /// A benchmark that runs in the simulation environment.
    pub fn examined(meta: BenchMeta, build: fn(Scale) -> Pipeline) -> Self {
        assert!(meta.examined, "{}: examined flag must be set", meta.name);
        Workload {
            meta,
            build: Some(build),
        }
    }

    /// A benchmark counted in the census but not simulated (the 12 that do
    /// not run or do trivial work in gem5-gpu).
    pub fn meta_only(meta: BenchMeta) -> Self {
        assert!(
            !meta.examined,
            "{}: meta-only must not be examined",
            meta.name
        );
        Workload { meta, build: None }
    }

    /// A benchmark outside the paper's examined 46 that this repo can
    /// nonetheless run — the models have no gem5-gpu porting constraints.
    /// Stays out of every paper reproduction; see
    /// [`runnable`](fn@runnable) and the `beyond46` experiment.
    pub fn extra(meta: BenchMeta, build: fn(Scale) -> Pipeline) -> Self {
        assert!(!meta.examined, "{}: extras are not examined", meta.name);
        Workload {
            meta,
            build: Some(build),
        }
    }

    /// Builds the pipeline model, if this workload is examined.
    pub fn pipeline(&self, scale: Scale) -> Option<Pipeline> {
        self.build.map(|f| f(scale))
    }
}

/// All 58 benchmarks across the four suites, in suite-then-name order.
pub fn all() -> Vec<Workload> {
    let mut v = Vec::with_capacity(58);
    v.extend(suites::lonestar::workloads());
    v.extend(suites::pannotia::workloads());
    v.extend(suites::parboil::workloads());
    v.extend(suites::rodinia::workloads());
    v
}

/// The 46 examined benchmarks.
pub fn examined() -> Vec<Workload> {
    all().into_iter().filter(|w| w.meta.examined).collect()
}

/// Every benchmark with an executable model — the 46 examined plus the
/// extras the paper's simulator could not run (all 58 here).
pub fn runnable() -> Vec<Workload> {
    all()
        .into_iter()
        .filter(|w| w.pipeline(Scale::TEST).is_some())
        .collect()
}

/// Looks a workload up by `suite/name`.
pub fn find(full_name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.meta.full_name() == full_name)
}

/// The Table II census: one row per suite plus the total.
pub fn census() -> (Vec<(Suite, CensusRow)>, CensusRow) {
    let mut rows: Vec<(Suite, CensusRow)> = Suite::ALL
        .iter()
        .map(|&s| (s, CensusRow::default()))
        .collect();
    for w in all() {
        let row = rows
            .iter_mut()
            .find(|(s, _)| *s == w.meta.suite)
            .expect("suite registered");
        row.1.add(&w.meta);
    }
    let mut total = CensusRow::default();
    for (_, r) in &rows {
        total.merge(r);
    }
    (rows, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_reproduces_table_ii_exactly() {
        let (rows, total) = census();
        let expect = [
            (Suite::Lonestar, (14, 14, 13, 14, 13, 10)),
            (Suite::Pannotia, (10, 10, 10, 10, 10, 0)),
            (Suite::Parboil, (12, 8, 8, 8, 3, 1)),
            (Suite::Rodinia, (22, 19, 18, 19, 6, 0)),
        ];
        for ((suite, row), (es, e)) in rows.iter().zip(expect.iter()) {
            assert_eq!(suite, es);
            assert_eq!(
                (
                    row.benchmarks,
                    row.pc_comm,
                    row.pipe_parallel,
                    row.regular,
                    row.irregular,
                    row.sw_queue
                ),
                *e,
                "{suite} row mismatch"
            );
        }
        assert_eq!(
            (
                total.benchmarks,
                total.pc_comm,
                total.pipe_parallel,
                total.regular,
                total.irregular,
                total.sw_queue
            ),
            (58, 51, 49, 51, 32, 11)
        );
    }

    #[test]
    fn forty_six_examined() {
        assert_eq!(examined().len(), 46);
    }

    #[test]
    fn every_examined_workload_builds_at_test_scale() {
        for w in examined() {
            let p = w.pipeline(Scale::TEST).expect("examined builds");
            assert_eq!(p.validate(), Ok(()), "{}", p.name);
            assert_eq!(p.name, w.meta.full_name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = all().iter().map(|w| w.meta.full_name()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn find_locates_kmeans() {
        let w = find("rodinia/kmeans").expect("kmeans exists");
        assert!(w.meta.examined);
        assert!(w.pipeline(Scale::TEST).is_some());
        assert!(find("rodinia/nope").is_none());
    }

    #[test]
    fn all_fifty_eight_are_runnable() {
        let r = runnable();
        assert_eq!(r.len(), 58, "every benchmark has an executable model");
        for w in &r {
            let p = w.pipeline(Scale::TEST).unwrap();
            assert_eq!(p.validate(), Ok(()), "{}", p.name);
        }
    }

    #[test]
    fn extras_are_exactly_the_unexamined_twelve() {
        let extras: Vec<String> = runnable()
            .into_iter()
            .filter(|w| !w.meta.examined)
            .map(|w| w.meta.full_name())
            .collect();
        assert_eq!(extras.len(), 12);
        for name in [
            "lonestar/bfs_atomic",
            "lonestar/pta",
            "lonestar/sssp_wlw",
            "pannotia/color_maxmin",
            "pannotia/sssp_ell",
            "parboil/mri_gridding",
            "parboil/sad",
            "parboil/tpacf",
            "rodinia/btree",
            "rodinia/lavamd",
            "rodinia/leukocyte",
            "rodinia/myocyte",
        ] {
            assert!(extras.iter().any(|e| e == name), "missing {name}");
        }
    }

    #[test]
    fn paper_scale_footprints_meet_criteria() {
        // §III-D scaled: every examined benchmark's logical footprint is at
        // least ~1.5 MiB and most exceed 6 MiB (scaled from the paper's
        // 6/42 MB thresholds).
        let mut over_6mb = 0;
        let mut n = 0;
        for w in examined() {
            let p = w.pipeline(Scale::PAPER).unwrap();
            let bytes = p.logical_bytes();
            assert!(bytes >= 3 << 19, "{} too small: {bytes}", p.name);
            if bytes >= 6 << 20 {
                over_6mb += 1;
            }
            n += 1;
        }
        assert!(over_6mb * 2 > n, "most benchmarks should exceed 6 MiB");
    }
}
