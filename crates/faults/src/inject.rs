//! The deterministic fault injector.
//!
//! An [`Injector`] holds a parsed [`FaultPlan`] and one seeded
//! [`SplitMix64`] decision stream. Code under test calls
//! [`Injector::roll`] at each injection seam; the injector answers
//! `Some(fault)` when a matching rule fires. With a fixed seed the
//! decision stream is reproducible; under concurrency the *interleaving*
//! of draws across threads can vary, but rule budgets (`max`) and the
//! per-site counters bound exactly what a chaos run must absorb, and the
//! pipeline's outputs are deterministic regardless of which operations the
//! faults landed on.
//!
//! A disabled injector (the default everywhere) is a single `is_empty`
//! check — no lock, no rng draw — so production paths pay nothing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use heteropipe_obs::log as obs_log;
use heteropipe_sim::SplitMix64;

use crate::plan::{FaultKind, FaultPlan, PlanError, Site};

/// The environment variable holding the process-wide fault plan.
pub const ENV_VAR: &str = "HETEROPIPE_FAULTS";

/// One fired fault: what to do at the seam that rolled it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// The failure to emulate.
    pub kind: FaultKind,
    /// Stall duration for [`FaultKind::Hang`], milliseconds.
    pub hang_ms: u64,
}

impl Fault {
    /// The injected failure as an `std::io::Error` (for I/O seams).
    pub fn io_error(&self) -> std::io::Error {
        match self.kind {
            FaultKind::Enospc => std::io::Error::new(
                std::io::ErrorKind::StorageFull,
                "injected: no space left on device",
            ),
            _ => std::io::Error::other(format!("injected: {}", self.kind.label())),
        }
    }
}

#[derive(Debug)]
struct RuleState {
    rule: crate::plan::FaultRule,
    seen: AtomicU64,
    fired: AtomicU64,
}

/// A seeded fault injector over a parsed plan. Cheap to share behind an
/// `Arc`; all state is interior.
#[derive(Debug)]
pub struct Injector {
    rules: Vec<RuleState>,
    rng: Mutex<SplitMix64>,
}

impl Default for Injector {
    fn default() -> Self {
        Injector {
            rules: Vec::new(),
            rng: Mutex::new(SplitMix64::new(crate::plan::DEFAULT_SEED)),
        }
    }
}

/// Fired-fault tallies for one `(site, kind)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultCount {
    /// Site label (`cache.write`, ...).
    pub site: &'static str,
    /// Kind label (`enospc`, ...).
    pub kind: &'static str,
    /// How many times rules with this site and kind fired.
    pub fired: u64,
}

impl Injector {
    /// An injector that never fires (the production default).
    pub fn disabled() -> Injector {
        Injector::default()
    }

    /// An injector over `plan`, seeded from the plan's seed.
    pub fn new(plan: FaultPlan) -> Injector {
        let seed = plan.seed();
        Injector {
            rules: plan
                .rules
                .into_iter()
                .map(|rule| RuleState {
                    rule,
                    seen: AtomicU64::new(0),
                    fired: AtomicU64::new(0),
                })
                .collect(),
            rng: Mutex::new(SplitMix64::new(seed)),
        }
    }

    /// An injector configured from the [`ENV_VAR`] environment variable.
    /// Unset or empty means disabled; a malformed plan is an error (a
    /// typo'd plan must not silently inject nothing).
    pub fn from_env() -> Result<Injector, PlanError> {
        match std::env::var(ENV_VAR) {
            Ok(s) => Ok(Injector::new(FaultPlan::parse(&s)?)),
            Err(_) => Ok(Injector::disabled()),
        }
    }

    /// Whether any rule is configured.
    pub fn is_enabled(&self) -> bool {
        !self.rules.is_empty()
    }

    /// Rolls the dice at `site`. `Some(fault)` means the caller must
    /// emulate that failure now; at most one rule fires per roll.
    pub fn roll(&self, site: Site) -> Option<Fault> {
        if self.rules.is_empty() {
            return None;
        }
        for state in self.rules.iter().filter(|s| s.rule.site == site) {
            let opportunity = state.seen.fetch_add(1, Ordering::Relaxed) + 1;
            if opportunity <= state.rule.after {
                continue;
            }
            if !self.rng.lock().unwrap().chance(state.rule.p) {
                continue;
            }
            if let Some(max) = state.rule.max {
                // fetch_add reserves a firing slot; losing the race means
                // the budget was already spent, so hand the slot back.
                if state.fired.fetch_add(1, Ordering::Relaxed) >= max {
                    state.fired.fetch_sub(1, Ordering::Relaxed);
                    continue;
                }
            } else {
                state.fired.fetch_add(1, Ordering::Relaxed);
            }
            let fault = Fault {
                kind: state.rule.kind,
                hang_ms: state.rule.hang_ms,
            };
            obs_log::debug(
                "faults",
                "fault injected",
                &[
                    ("site", site.label().into()),
                    ("kind", fault.kind.label().into()),
                ],
            );
            return Some(fault);
        }
        None
    }

    /// Total faults fired so far, across every rule.
    pub fn total_fired(&self) -> u64 {
        self.rules
            .iter()
            .map(|s| s.fired.load(Ordering::Relaxed))
            .sum()
    }

    /// Fired tallies aggregated by `(site, kind)`, in first-seen order.
    pub fn counts(&self) -> Vec<FaultCount> {
        let mut out: Vec<FaultCount> = Vec::new();
        for state in &self.rules {
            let (site, kind) = (state.rule.site.label(), state.rule.kind.label());
            let fired = state.fired.load(Ordering::Relaxed);
            match out.iter_mut().find(|c| c.site == site && c.kind == kind) {
                Some(c) => c.fired += fired,
                None => out.push(FaultCount { site, kind, fired }),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(s: &str) -> Injector {
        Injector::new(FaultPlan::parse(s).unwrap())
    }

    #[test]
    fn disabled_injector_never_fires() {
        let inj = Injector::disabled();
        assert!(!inj.is_enabled());
        for site in Site::ALL {
            assert_eq!(inj.roll(site), None);
        }
        assert_eq!(inj.total_fired(), 0);
    }

    #[test]
    fn certain_rule_fires_and_respects_max() {
        let inj = plan("cache.write:err=enospc:max=2");
        assert!(inj.is_enabled());
        assert!(inj.roll(Site::CacheWrite).is_some());
        assert!(inj.roll(Site::CacheWrite).is_some());
        assert_eq!(inj.roll(Site::CacheWrite), None, "budget spent");
        assert_eq!(inj.roll(Site::CacheRead), None, "other sites untouched");
        assert_eq!(inj.total_fired(), 2);
        assert_eq!(
            inj.counts(),
            vec![FaultCount {
                site: "cache.write",
                kind: "enospc",
                fired: 2
            }]
        );
    }

    #[test]
    fn after_skips_early_opportunities() {
        let inj = plan("job.exec:err=panic:after=2");
        assert_eq!(inj.roll(Site::JobExec), None);
        assert_eq!(inj.roll(Site::JobExec), None);
        assert!(inj.roll(Site::JobExec).is_some(), "armed on the third");
    }

    #[test]
    fn same_seed_same_decisions() {
        let decide = || {
            let inj = plan("seed=7;serve.read:err=drop:p=0.5");
            (0..64)
                .map(|_| inj.roll(Site::ServeRead).is_some())
                .collect::<Vec<_>>()
        };
        let a = decide();
        assert_eq!(a, decide(), "fixed seed, fixed stream");
        assert!(a.iter().any(|&b| b) && a.iter().any(|&b| !b), "p=0.5 mixes");
    }

    #[test]
    fn different_seeds_differ() {
        let stream = |seed: u64| {
            let inj = plan(&format!("seed={seed};job.exec:err=panic:p=0.5"));
            (0..64)
                .map(|_| inj.roll(Site::JobExec).is_some())
                .collect::<Vec<_>>()
        };
        assert_ne!(stream(1), stream(2));
    }

    #[test]
    fn hang_carries_duration_and_io_errors_map() {
        let inj = plan("job.exec:err=hang:ms=7");
        let fault = inj.roll(Site::JobExec).unwrap();
        assert_eq!(fault.kind, FaultKind::Hang);
        assert_eq!(fault.hang_ms, 7);

        let enospc = Fault {
            kind: FaultKind::Enospc,
            hang_ms: 0,
        };
        assert_eq!(enospc.io_error().kind(), std::io::ErrorKind::StorageFull);
        let eio = Fault {
            kind: FaultKind::Eio,
            hang_ms: 0,
        };
        assert!(eio.io_error().to_string().contains("injected"));
    }

    #[test]
    fn concurrent_rolls_never_exceed_max() {
        let inj = std::sync::Arc::new(plan("cache.write:err=eio:max=5"));
        let fired: u64 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let inj = std::sync::Arc::clone(&inj);
                    s.spawn(move || {
                        (0..100)
                            .filter(|_| inj.roll(Site::CacheWrite).is_some())
                            .count() as u64
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(fired, 5, "exactly the budget fires under contention");
        assert_eq!(inj.total_fired(), 5);
    }
}
