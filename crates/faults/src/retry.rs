//! Retry with exponential backoff and deterministic jitter.
//!
//! The policy is classic capped exponential backoff with "equal jitter":
//! attempt `n` sleeps between `base·2ⁿ/2` and `base·2ⁿ` milliseconds
//! (capped), the jitter drawn from a [`SplitMix64`] stream the caller
//! seeds — usually from the operation's content address — so a replayed
//! run backs off identically. Defaults are tuned for the engine's disk
//! cache (millisecond-scale transients, sub-second total budget); callers
//! with slower dependencies override them.

use heteropipe_sim::SplitMix64;

/// How many times to retry and how long to wait between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub attempts: u32,
    /// Backoff base, milliseconds (sleep before retry `n` is drawn from
    /// `[base·2ⁿ⁻¹/2, base·2ⁿ⁻¹]`).
    pub base_ms: u64,
    /// Upper bound on any single sleep, milliseconds.
    pub cap_ms: u64,
}

impl RetryPolicy {
    /// The engine default: 5 attempts, 1 ms base, 50 ms cap — at most
    /// ~100 ms of cumulative backoff on a fully faulty path.
    pub const DEFAULT: RetryPolicy = RetryPolicy {
        attempts: 5,
        base_ms: 1,
        cap_ms: 50,
    };

    /// A policy that never retries (one attempt, no sleeps).
    pub const NONE: RetryPolicy = RetryPolicy {
        attempts: 1,
        base_ms: 0,
        cap_ms: 0,
    };

    /// The jittered sleep before retry attempt `attempt` (1-based: the
    /// sleep after the first failure is `delay_ms(1, ..)`).
    pub fn delay_ms(&self, attempt: u32, jitter: &mut SplitMix64) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(20))
            .min(self.cap_ms);
        let half = exp / 2;
        half + jitter.below(exp - half + 1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::DEFAULT
    }
}

/// Runs `op` under `policy`, sleeping a jittered backoff (seeded by
/// `seed`) between attempts. `op` receives the 0-based attempt index;
/// `on_retry` observes each failure that will be retried (attempt index,
/// error, upcoming sleep in ms). Returns the first success or the last
/// error.
pub fn with_retries<T, E>(
    policy: &RetryPolicy,
    seed: u64,
    mut op: impl FnMut(u32) -> Result<T, E>,
    mut on_retry: impl FnMut(u32, &E, u64),
) -> Result<T, E> {
    let attempts = policy.attempts.max(1);
    let mut jitter = SplitMix64::new(seed);
    let mut attempt = 0;
    loop {
        match op(attempt) {
            Ok(v) => return Ok(v),
            Err(e) if attempt + 1 < attempts => {
                let sleep_ms = policy.delay_ms(attempt + 1, &mut jitter);
                on_retry(attempt, &e, sleep_ms);
                if sleep_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let mut calls = 0;
        let out: Result<u32, ()> = with_retries(
            &RetryPolicy::DEFAULT,
            1,
            |_| {
                calls += 1;
                Ok(7)
            },
            |_, _, _| panic!("no retries expected"),
        );
        assert_eq!(out, Ok(7));
        assert_eq!(calls, 1);
    }

    #[test]
    fn retries_until_success_and_reports_each() {
        let mut retried = Vec::new();
        let out: Result<u32, &str> = with_retries(
            &RetryPolicy {
                attempts: 4,
                base_ms: 0,
                cap_ms: 0,
            },
            2,
            |attempt| {
                if attempt < 2 {
                    Err("transient")
                } else {
                    Ok(attempt)
                }
            },
            |attempt, _, _| retried.push(attempt),
        );
        assert_eq!(out, Ok(2));
        assert_eq!(retried, vec![0, 1]);
    }

    #[test]
    fn exhausts_attempts_and_returns_last_error() {
        let mut calls = 0;
        let out: Result<(), u32> = with_retries(
            &RetryPolicy {
                attempts: 3,
                base_ms: 0,
                cap_ms: 0,
            },
            3,
            |attempt| {
                calls += 1;
                Err(attempt)
            },
            |_, _, _| {},
        );
        assert_eq!(out, Err(2));
        assert_eq!(calls, 3);
    }

    #[test]
    fn delays_are_capped_jittered_and_deterministic() {
        let p = RetryPolicy {
            attempts: 8,
            base_ms: 4,
            cap_ms: 20,
        };
        let mut a = SplitMix64::new(9);
        let mut b = SplitMix64::new(9);
        for attempt in 1..8 {
            let d = p.delay_ms(attempt, &mut a);
            assert_eq!(d, p.delay_ms(attempt, &mut b), "same seed, same delay");
            assert!(d <= p.cap_ms, "attempt {attempt} slept {d} > cap");
            let exp = (p.base_ms << (attempt - 1)).min(p.cap_ms);
            assert!(d >= exp / 2, "attempt {attempt} slept {d} < half of {exp}");
        }
    }
}
