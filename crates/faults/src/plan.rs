//! The fault-plan grammar behind `HETEROPIPE_FAULTS`.
//!
//! A plan is a `;`-separated list of clauses. Each clause is either the
//! seed directive `seed=<u64>` or a rule:
//!
//! ```text
//! <site>:err=<kind>[:p=<prob>][:max=<count>][:after=<count>][:ms=<millis>]
//! ```
//!
//! * `site` — where the fault fires: `cache.write`, `cache.read`,
//!   `job.exec`, `serve.accept`, `serve.read`, `serve.write`,
//!   `cluster.probe`, `cluster.forward`, `journal.append`,
//!   `journal.replay`;
//! * `err` — what happens: `enospc` / `eio` (an I/O error), `corrupt`
//!   (bytes are bit-flipped in flight), `panic` (the job panics), `hang`
//!   (the job stalls for `ms` milliseconds), `drop` (the connection is
//!   closed without a response);
//! * `p` — per-opportunity probability in `[0, 1]` (default 1.0);
//! * `max` — total firings before the rule disarms (default unlimited);
//! * `after` — opportunities to skip before the rule arms (default 0);
//! * `ms` — stall duration for `hang` (default 50).
//!
//! Example: `seed=42;cache.write:err=enospc:p=0.1:max=3;job.exec:err=panic:p=0.05`.
//!
//! Parsing is total and strict: any unknown site, kind, key, or malformed
//! number is a [`PlanError`] naming the offending clause — a typo'd plan
//! must fail loudly rather than silently inject nothing.

use std::fmt;
use std::str::FromStr;

/// Default root seed when a plan does not carry `seed=`.
pub const DEFAULT_SEED: u64 = 0xFA_17;

/// An injection point in the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Site {
    /// Persisting a result record to the disk cache tier.
    CacheWrite,
    /// Reading a result record back from the disk cache tier.
    CacheRead,
    /// Executing a simulation job.
    JobExec,
    /// Admitting a connection in the serve accept loop.
    ServeAccept,
    /// Reading a request off an admitted connection.
    ServeRead,
    /// Writing a response back to the peer.
    ServeWrite,
    /// A coordinator's peer-cache probe to the shard owning a run key
    /// (`drop`/`eio` emulate a network partition, `hang` a slow link).
    ClusterProbe,
    /// A coordinator forwarding work to a worker (`drop`/`eio` emulate a
    /// partition or dead worker, `hang` a slow worker).
    ClusterForward,
    /// Appending an intent/record/done line to the write-ahead sweep
    /// journal (`corrupt` rots the line so replay must quarantine it).
    JournalAppend,
    /// Replaying a journal segment at startup or on a records fetch.
    JournalReplay,
}

impl Site {
    /// Every known site, in grammar order.
    pub const ALL: [Site; 10] = [
        Site::CacheWrite,
        Site::CacheRead,
        Site::JobExec,
        Site::ServeAccept,
        Site::ServeRead,
        Site::ServeWrite,
        Site::ClusterProbe,
        Site::ClusterForward,
        Site::JournalAppend,
        Site::JournalReplay,
    ];

    /// The grammar / metric-label spelling (`cache.write`, ...).
    pub fn label(self) -> &'static str {
        match self {
            Site::CacheWrite => "cache.write",
            Site::CacheRead => "cache.read",
            Site::JobExec => "job.exec",
            Site::ServeAccept => "serve.accept",
            Site::ServeRead => "serve.read",
            Site::ServeWrite => "serve.write",
            Site::ClusterProbe => "cluster.probe",
            Site::ClusterForward => "cluster.forward",
            Site::JournalAppend => "journal.append",
            Site::JournalReplay => "journal.replay",
        }
    }
}

impl FromStr for Site {
    type Err = ();
    fn from_str(s: &str) -> Result<Site, ()> {
        Site::ALL
            .into_iter()
            .find(|site| site.label() == s)
            .ok_or(())
    }
}

/// What an armed rule does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `std::io::ErrorKind::StorageFull` ("no space left on device").
    Enospc,
    /// A generic I/O error.
    Eio,
    /// Bytes are bit-flipped in flight (torn/rotten record).
    Corrupt,
    /// The operation panics.
    Panic,
    /// The operation stalls (bounded; see [`FaultRule::hang_ms`]).
    Hang,
    /// The connection is dropped without a response.
    Drop,
}

impl FaultKind {
    /// The grammar / metric-label spelling.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::Enospc => "enospc",
            FaultKind::Eio => "eio",
            FaultKind::Corrupt => "corrupt",
            FaultKind::Panic => "panic",
            FaultKind::Hang => "hang",
            FaultKind::Drop => "drop",
        }
    }
}

impl FromStr for FaultKind {
    type Err = ();
    fn from_str(s: &str) -> Result<FaultKind, ()> {
        Ok(match s {
            "enospc" => FaultKind::Enospc,
            "eio" => FaultKind::Eio,
            "corrupt" => FaultKind::Corrupt,
            "panic" => FaultKind::Panic,
            "hang" => FaultKind::Hang,
            "drop" => FaultKind::Drop,
            _ => return Err(()),
        })
    }
}

/// One parsed rule of a fault plan.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Where the fault fires.
    pub site: Site,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Per-opportunity firing probability in `[0, 1]`.
    pub p: f64,
    /// Total firings before the rule disarms (`None` = unlimited).
    pub max: Option<u64>,
    /// Opportunities to skip before the rule arms.
    pub after: u64,
    /// Stall duration for [`FaultKind::Hang`], milliseconds.
    pub hang_ms: u64,
}

/// A parsed `HETEROPIPE_FAULTS` plan: a seed plus a rule list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Root seed for the injector's decision stream.
    pub seed: Option<u64>,
    /// The rules, in plan order.
    pub rules: Vec<FaultRule>,
}

/// A rejected plan string, pointing at the offending clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError {
    /// The clause that failed to parse.
    pub clause: String,
    /// Why it was rejected.
    pub reason: String,
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault clause {:?}: {}", self.clause, self.reason)
    }
}

impl std::error::Error for PlanError {}

impl FaultPlan {
    /// Parses a plan string. The empty string (or one that is all
    /// separators) is the empty plan: no rules, nothing injected.
    pub fn parse(s: &str) -> Result<FaultPlan, PlanError> {
        let mut plan = FaultPlan::default();
        for clause in s.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = Some(seed.parse().map_err(|_| PlanError {
                    clause: clause.to_owned(),
                    reason: "seed must be a u64".into(),
                })?);
                continue;
            }
            plan.rules.push(parse_rule(clause)?);
        }
        Ok(plan)
    }

    /// The effective root seed ([`DEFAULT_SEED`] unless `seed=` was given).
    pub fn seed(&self) -> u64 {
        self.seed.unwrap_or(DEFAULT_SEED)
    }
}

fn parse_rule(clause: &str) -> Result<FaultRule, PlanError> {
    let err = |reason: &str| PlanError {
        clause: clause.to_owned(),
        reason: reason.to_owned(),
    };
    let mut parts = clause.split(':');
    let site: Site = parts
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|()| {
            err("unknown site (cache.write, cache.read, job.exec, serve.accept, serve.read, serve.write, cluster.probe, cluster.forward, journal.append, journal.replay)")
        })?;

    let mut kind = None;
    let mut rule = FaultRule {
        site,
        kind: FaultKind::Eio,
        p: 1.0,
        max: None,
        after: 0,
        hang_ms: 50,
    };
    for part in parts {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| err("directives must be key=value"))?;
        match key {
            "err" => {
                kind =
                    Some(value.parse().map_err(|()| {
                        err("unknown err (enospc, eio, corrupt, panic, hang, drop)")
                    })?);
            }
            "p" => {
                let p: f64 = value.parse().map_err(|_| err("p must be a number"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(err("p must be in [0, 1]"));
                }
                rule.p = p;
            }
            "max" => rule.max = Some(value.parse().map_err(|_| err("max must be a u64"))?),
            "after" => rule.after = value.parse().map_err(|_| err("after must be a u64"))?,
            "ms" => rule.hang_ms = value.parse().map_err(|_| err("ms must be a u64"))?,
            _ => return Err(err("unknown directive (err, p, max, after, ms)")),
        }
    }
    rule.kind = kind.ok_or_else(|| err("missing err=<kind>"))?;
    Ok(rule)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan = FaultPlan::parse("cache.write:err=enospc:p=0.1").unwrap();
        assert_eq!(plan.seed(), DEFAULT_SEED);
        assert_eq!(
            plan.rules,
            vec![FaultRule {
                site: Site::CacheWrite,
                kind: FaultKind::Enospc,
                p: 0.1,
                max: None,
                after: 0,
                hang_ms: 50,
            }]
        );
    }

    #[test]
    fn parses_seed_and_multiple_rules() {
        let plan = FaultPlan::parse(
            "seed=42; cache.read:err=corrupt:max=2 ; job.exec:err=hang:ms=10:p=0.5:after=1;",
        )
        .unwrap();
        assert_eq!(plan.seed(), 42);
        assert_eq!(plan.rules.len(), 2);
        assert_eq!(plan.rules[0].site, Site::CacheRead);
        assert_eq!(plan.rules[0].kind, FaultKind::Corrupt);
        assert_eq!(plan.rules[0].max, Some(2));
        assert_eq!(plan.rules[1].hang_ms, 10);
        assert_eq!(plan.rules[1].after, 1);
        assert_eq!(plan.rules[1].p, 0.5);
    }

    #[test]
    fn empty_plan_is_empty() {
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert_eq!(FaultPlan::parse(" ; ;").unwrap().rules, Vec::new());
    }

    #[test]
    fn rejects_malformed_clauses() {
        for bad in [
            "disk.write:err=eio",      // unknown site
            "cache.write",             // missing err
            "cache.write:err=boom",    // unknown kind
            "cache.write:err=eio:p=2", // p out of range
            "cache.write:err=eio:p=x",
            "cache.write:eio", // bare word directive
            "cache.write:err=eio:frequency=1",
            "seed=abc",
        ] {
            let e = FaultPlan::parse(bad).unwrap_err();
            assert!(e.to_string().contains("bad fault clause"), "{bad} -> {e}");
        }
    }

    #[test]
    fn site_labels_round_trip() {
        for site in Site::ALL {
            assert_eq!(site.label().parse::<Site>().unwrap(), site);
        }
    }
}
