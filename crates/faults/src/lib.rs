//! # heteropipe-faults
//!
//! Deterministic fault injection and the retry primitives that absorb the
//! injected failures. The paper's multi-stage pipeline analysis depends on
//! long experiment runs completing reliably; this crate makes every
//! failure path in the engine/serve stack *injectable* (so CI can replay
//! it with a fixed seed), *observable* (per-site fired counters exported
//! to `/metrics`), and *recoverable* (capped exponential backoff with
//! deterministic jitter).
//!
//! * [`plan`] — the `HETEROPIPE_FAULTS` grammar: clauses like
//!   `cache.write:err=enospc:p=0.1:max=3`, parsed into a [`FaultPlan`];
//! * [`inject`] — the seeded [`Injector`]: seams in the engine cache I/O
//!   path, the job executor, and the serve socket loop call
//!   [`Injector::roll`] and emulate whatever fault fires;
//! * [`retry`] — [`RetryPolicy`] (capped exponential backoff, equal
//!   jitter from a [`heteropipe_sim::SplitMix64`] stream) and the
//!   [`with_retries`] driver.
//!
//! Everything is `std`-only and a disabled injector costs one branch, so
//! the seams stay compiled into production paths — exactly what the chaos
//! CI gate (`bench/src/bin/chaos.rs`) replays end to end.

#![warn(missing_docs)]

pub mod inject;
pub mod plan;
pub mod retry;

pub use inject::{Fault, FaultCount, Injector, ENV_VAR};
pub use plan::{FaultKind, FaultPlan, FaultRule, PlanError, Site};
pub use retry::{with_retries, RetryPolicy};
