//! Criterion benches for the simulator substrates themselves: the cache
//! model, the fluid bandwidth network, the pattern generators, and the
//! off-chip classifier. These set the cost floor of the characterization
//! pass (every benchmark run is millions of these operations).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use heteropipe::OffchipClassifier;
use heteropipe_mem::hierarchy::HierarchyConfig;
use heteropipe_mem::{
    AccessKind, Addr, AddrRange, CacheConfig, ChipHierarchy, LineAddr, SetAssocCache,
};
use heteropipe_sim::fluid::{FlowSpec, FluidNet};
use heteropipe_sim::{Ps, SplitMix64};
use heteropipe_workloads::Pattern;

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let n = 100_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("l2_stream_access", |b| {
        let mut cache = SetAssocCache::new(CacheConfig::new(1024 * 1024, 16));
        b.iter(|| {
            for i in 0..n {
                black_box(cache.access(LineAddr(i % 20_000), AccessKind::Read));
            }
        })
    });
    g.bench_function("hierarchy_gpu_access", |b| {
        let mut h = ChipHierarchy::new(HierarchyConfig::paper_heterogeneous());
        b.iter(|| {
            for i in 0..n {
                black_box(h.gpu_access((i % 16) as u8, LineAddr(i % 20_000), AccessKind::Read));
            }
        })
    });
    g.finish();
}

fn bench_fluid(c: &mut Criterion) {
    c.bench_function("fluid_1000_flows", |b| {
        b.iter(|| {
            let mut net = FluidNet::new();
            let link = net.add_resource("link", 100.0e9);
            let mut t = Ps::ZERO;
            for i in 0..1000u64 {
                net.start_flow(t, FlowSpec::new(1.0e6).over(link));
                if i % 4 == 3 {
                    let (at, f) = net.next_completion().unwrap();
                    net.retire(at, f);
                    t = at;
                }
            }
            while let Some((at, f)) = net.next_completion() {
                net.retire(at, f);
            }
            black_box(net.now())
        })
    });
}

fn bench_patterns(c: &mut Criterion) {
    let mut g = c.benchmark_group("patterns");
    let range = AddrRange::new(Addr(0), 8 << 20);
    for (name, p) in [
        ("stream", Pattern::Stream { passes: 1 }),
        ("stencil", Pattern::Stencil { row_elems: 1024 }),
        (
            "gather",
            Pattern::Gather {
                count: 65_536,
                region: 1.0,
            },
        ),
        ("neighbors", Pattern::Neighbors { degree: 0.2 }),
    ] {
        g.bench_function(name, |b| {
            let mut out = Vec::new();
            b.iter(|| {
                out.clear();
                let mut rng = SplitMix64::new(1);
                p.emit(range, 4, &mut rng, &mut out);
                black_box(out.len())
            })
        });
    }
    g.finish();
}

fn bench_classifier(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("classifier");
    g.throughput(Throughput::Elements(n));
    g.bench_function("fetch_stream", |b| {
        b.iter(|| {
            let mut cls = OffchipClassifier::new();
            for stage in 0..4u32 {
                for i in 0..n / 4 {
                    cls.fetch(LineAddr(i % 10_000), stage);
                }
            }
            black_box(cls.finish())
        })
    });
    g.finish();
}

criterion_group!(
    substrates,
    bench_cache,
    bench_fluid,
    bench_patterns,
    bench_classifier
);
criterion_main!(substrates);
