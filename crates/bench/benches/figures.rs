//! Criterion benches, one per paper table/figure: each group times the
//! experiment driver that regenerates the corresponding result (at a
//! reduced scale so a full `cargo bench` stays in minutes).
//!
//! The *output* of each experiment at full scale lives in EXPERIMENTS.md;
//! these benches exist to (a) keep the drivers honest about cost and
//! (b) provide the one-bench-per-figure harness entry points.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use heteropipe::experiments::{characterize_filtered, fig3, fig456, fig78, fig9, tables, validate};
use heteropipe_workloads::{Scale, Suite};

const BENCH_SCALE: Scale = Scale::TEST;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1_system_parameters", |b| {
        b.iter(|| black_box(tables::render_table1()))
    });
}

fn bench_table2(c: &mut Criterion) {
    c.bench_function("table2_census", |b| {
        b.iter(|| black_box(tables::render_table2()))
    });
}

fn bench_fig3(c: &mut Criterion) {
    c.bench_function("fig3_kmeans_case_study", |b| {
        b.iter(|| black_box(fig3::compute(BENCH_SCALE)))
    });
}

/// The shared characterization pass (figs. 4-9 input), one suite at a time
/// so the per-figure costs are visible.
fn bench_characterize(c: &mut Criterion) {
    let mut g = c.benchmark_group("characterize");
    g.sample_size(10);
    for suite in [Suite::Rodinia, Suite::Pannotia] {
        g.bench_function(format!("{suite}"), |b| {
            b.iter(|| black_box(characterize_filtered(BENCH_SCALE, |m| m.suite == suite)))
        });
    }
    g.finish();
}

fn bench_fig4(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig4_footprint", |b| {
        b.iter(|| black_box(fig456::fig4(&pairs)))
    });
}

fn bench_fig5(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig5_accesses", |b| {
        b.iter(|| black_box(fig456::fig5(&pairs)))
    });
}

fn bench_fig6(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig6_runtime", |b| {
        b.iter(|| black_box(fig456::fig6(&pairs)))
    });
}

fn bench_fig7(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig7_overlap_estimates", |b| {
        b.iter(|| black_box(fig78::fig7(&pairs)))
    });
}

fn bench_fig8(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig8_migrate_estimates", |b| {
        b.iter(|| black_box(fig78::fig8(&pairs)))
    });
}

fn bench_fig9(c: &mut Criterion) {
    let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
    c.bench_function("fig9_access_classes", |b| {
        b.iter(|| black_box(fig9::fig9(&pairs)))
    });
}

fn bench_validations(c: &mut Criterion) {
    let mut g = c.benchmark_group("validate");
    g.sample_size(10);
    g.bench_function("overlap", |b| {
        b.iter(|| black_box(validate::validate_overlap(BENCH_SCALE)))
    });
    g.bench_function("migrate", |b| {
        b.iter(|| black_box(validate::validate_migrate(BENCH_SCALE)))
    });
    g.finish();
}

criterion_group! {
    name = figures;
    config = Criterion::default();
    targets = bench_table1, bench_table2, bench_fig3, bench_characterize,
              bench_fig4, bench_fig5, bench_fig6, bench_fig7, bench_fig8,
              bench_fig9, bench_validations
}
criterion_main!(figures);
