//! Minimal in-tree wall-clock timing harness.
//!
//! Replaces the Criterion benches: each case is run once to warm up, then
//! `iters` times, and the median / min / max wall-clock times are printed as
//! an aligned text table. No statistics beyond that — the benches exist to
//! keep the experiment drivers honest about cost, not to detect 1%
//! regressions.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// A timing session: holds the per-case iteration count and an optional
/// case-name substring filter, and prints one result line per case.
///
/// # Examples
///
/// ```
/// use heteropipe_bench::timing::Timer;
///
/// let t = Timer::new(3, None);
/// t.case("sum", || (0..1000u64).sum::<u64>());
/// ```
#[derive(Debug, Clone)]
pub struct Timer {
    iters: usize,
    filter: Option<String>,
}

impl Timer {
    /// A session timing each case `iters` times (minimum 1), running only
    /// cases whose name contains `filter` when one is given.
    pub fn new(iters: usize, filter: Option<String>) -> Self {
        Timer {
            iters: iters.max(1),
            filter,
        }
    }

    /// Whether `name` passes the filter.
    pub fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f` and prints `name  median  min  max  (iters)`. Skips
    /// silently when the name does not match the filter.
    pub fn case<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if !self.selected(name) {
            return;
        }
        black_box(f()); // warm-up, untimed
        let mut samples = Vec::with_capacity(self.iters);
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            samples.push(t0.elapsed());
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let min = samples[0];
        let max = samples[samples.len() - 1];
        println!(
            "{name:<36} median {:>12}  min {:>12}  max {:>12}  ({} iters)",
            fmt_duration(median),
            fmt_duration(min),
            fmt_duration(max),
            self.iters
        );
    }
}

/// Renders a duration with a unit chosen for legibility.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_selects_substrings() {
        let all = Timer::new(1, None);
        assert!(all.selected("cache/l2_stream"));
        let some = Timer::new(1, Some("fluid".into()));
        assert!(some.selected("fluid_1000_flows"));
        assert!(!some.selected("cache/l2_stream"));
    }

    #[test]
    fn iters_clamped_to_one() {
        let t = Timer::new(0, None);
        let mut runs = 0;
        t.case("noop", || runs += 1);
        assert_eq!(runs, 2); // warm-up + one timed iteration
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.00 us");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00 s");
    }
}
