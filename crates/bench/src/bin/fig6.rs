//! Regenerates Fig. 6 — run time component activity.
//!
//! A thin wrapper submitting the built-in `fig6` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig6");
}
