//! Regenerates Fig. 6 — run time component activity.

use heteropipe::experiments::{characterize_all_with, fig456};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let pairs = characterize_all_with(&engine, args.scale);
    let rows = fig456::fig6(&pairs);
    print!(
        "{}",
        if args.csv {
            fig456::csv_fig6(&rows)
        } else {
            fig456::render_fig6_with_effects(&rows, &pairs)
        }
    );
    heteropipe_bench::finish(&engine);
}
