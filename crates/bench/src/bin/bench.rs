//! In-tree benchmark runner (replaces the former Criterion benches).
//!
//! Times the experiment drivers that regenerate each paper table/figure and
//! the simulator substrates they are built on, at `Scale::TEST` so a full
//! run stays in seconds. Usage:
//!
//! ```text
//! bench [--iters <N>] [--filter <substring>]
//! ```

use std::hint::black_box;

use heteropipe::experiments::{characterize_filtered, fig3, fig456, fig78, fig9, tables, validate};
use heteropipe::OffchipClassifier;
use heteropipe_bench::timing::Timer;
use heteropipe_mem::hierarchy::HierarchyConfig;
use heteropipe_mem::{
    AccessKind, Addr, AddrRange, CacheConfig, ChipHierarchy, LineAddr, SetAssocCache,
};
use heteropipe_sim::fluid::{FlowSpec, FluidNet};
use heteropipe_sim::{Ps, SplitMix64};
use heteropipe_workloads::{Pattern, Scale, Suite};

const BENCH_SCALE: Scale = Scale::TEST;

fn parse_args() -> Timer {
    let mut iters = 5usize;
    let mut filter = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--iters requires a positive integer"));
            }
            "--filter" => {
                filter = Some(
                    it.next()
                        .unwrap_or_else(|| panic!("--filter requires a substring")),
                );
            }
            other => {
                panic!("unknown argument {other}; accepted: --iters <N>, --filter <substring>")
            }
        }
    }
    Timer::new(iters, filter)
}

fn bench_figures(t: &Timer) {
    t.case("table1_system_parameters", tables::render_table1);
    t.case("table2_census", tables::render_table2);
    t.case("fig3_kmeans_case_study", || fig3::compute(BENCH_SCALE));
    for suite in [Suite::Rodinia, Suite::Pannotia] {
        t.case(&format!("characterize/{suite}"), || {
            characterize_filtered(BENCH_SCALE, |m| m.suite == suite)
        });
    }

    // The fig4-9 renderers share one characterization pass as input.
    let fig_cases = [
        "fig4_footprint",
        "fig5_accesses",
        "fig6_runtime",
        "fig7_overlap_estimates",
        "fig8_migrate_estimates",
        "fig9_access_classes",
    ];
    if fig_cases.iter().any(|name| t.selected(name)) {
        let pairs = characterize_filtered(BENCH_SCALE, |m| m.suite == Suite::Parboil);
        t.case("fig4_footprint", || fig456::fig4(&pairs));
        t.case("fig5_accesses", || fig456::fig5(&pairs));
        t.case("fig6_runtime", || fig456::fig6(&pairs));
        t.case("fig7_overlap_estimates", || fig78::fig7(&pairs));
        t.case("fig8_migrate_estimates", || fig78::fig8(&pairs));
        t.case("fig9_access_classes", || fig9::fig9(&pairs));
    }

    t.case("validate/overlap", || {
        validate::validate_overlap(BENCH_SCALE)
    });
    t.case("validate/migrate", || {
        validate::validate_migrate(BENCH_SCALE)
    });
}

fn bench_substrates(t: &Timer) {
    let n = 100_000u64;
    t.case("cache/l2_stream_access", || {
        let mut cache = SetAssocCache::new(CacheConfig::new(1024 * 1024, 16));
        for i in 0..n {
            black_box(cache.access(LineAddr(i % 20_000), AccessKind::Read));
        }
    });
    t.case("cache/hierarchy_gpu_access", || {
        let mut h = ChipHierarchy::new(HierarchyConfig::paper_heterogeneous());
        for i in 0..n {
            black_box(h.gpu_access((i % 16) as u8, LineAddr(i % 20_000), AccessKind::Read));
        }
    });
    t.case("fluid_1000_flows", || {
        let mut net = FluidNet::new();
        let link = net.add_resource("link", 100.0e9);
        let mut now = Ps::ZERO;
        for i in 0..1000u64 {
            net.start_flow(now, FlowSpec::new(1.0e6).over(link));
            if i % 4 == 3 {
                let (at, f) = net.next_completion().unwrap();
                net.retire(at, f);
                now = at;
            }
        }
        while let Some((at, f)) = net.next_completion() {
            net.retire(at, f);
        }
        net.now()
    });
    let range = AddrRange::new(Addr(0), 8 << 20);
    for (name, p) in [
        ("patterns/stream", Pattern::Stream { passes: 1 }),
        ("patterns/stencil", Pattern::Stencil { row_elems: 1024 }),
        (
            "patterns/gather",
            Pattern::Gather {
                count: 65_536,
                region: 1.0,
            },
        ),
        ("patterns/neighbors", Pattern::Neighbors { degree: 0.2 }),
    ] {
        t.case(name, || {
            let mut out = Vec::new();
            let mut rng = SplitMix64::new(1);
            p.emit(range, 4, &mut rng, &mut out);
            out.len()
        });
    }
    t.case("classifier/fetch_stream", || {
        let mut cls = OffchipClassifier::new();
        for stage in 0..4u32 {
            for i in 0..n / 4 {
                cls.fetch(LineAddr(i % 10_000), stage);
            }
        }
        cls.finish()
    });
}

fn main() {
    let t = parse_args();
    bench_figures(&t);
    bench_substrates(&t);
}
