//! Tornado sensitivity analysis of the model constants.
//!
//! A thin wrapper submitting the built-in `sensitivity` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("sensitivity");
}
