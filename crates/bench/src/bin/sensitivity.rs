//! Tornado sensitivity analysis of the model constants.

use heteropipe::experiments::sensitivity;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    print!(
        "{}",
        sensitivity::render(&sensitivity::sensitivity_study(args.scale))
    );
}
