//! Tornado sensitivity analysis of the model constants.

use heteropipe::experiments::sensitivity;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    print!(
        "{}",
        sensitivity::render(&sensitivity::sensitivity_study_with(&engine, args.scale))
    );
    heteropipe_bench::finish(&engine);
}
