//! `perf`: the repo's performance checkpoint, one JSON file per day.
//!
//! Measures five layers end to end — raw simulation wall time per
//! benchmark, engine throughput cold vs warm, serving-path latency under
//! an in-process load generator, cluster-vs-single-node cold sweep
//! throughput, and the always-on phase profiler's overhead on the warm
//! engine path — and writes `BENCH_<date>.json` in the current directory.
//! When an earlier `BENCH_*.json` checkpoint exists it compares the new
//! numbers against the latest one — read *before* today's file is
//! overwritten, so a same-date rerun still has its baseline — and fails
//! on a regression beyond a generous 4x tolerance (the files travel
//! between machines; the check catches collapses, not noise).
//! `HETEROPIPE_PERF_NO_COMPARE=1` skips the comparison entirely;
//! `HETEROPIPE_PERF_STRICT_PCT=10` (CI) additionally fails hard when
//! warm engine throughput or the median sim wall time regresses by more
//! than that percentage against the baseline.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin perf -- --scale 0.05
//! ```

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use heteropipe_cluster::{serve_cluster, ClusterConfig};
use heteropipe_engine::Engine;
use heteropipe_obs::log::Level;
use heteropipe_serve::api::{self, parse_job_spec};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{Client, Json};
use heteropipe_sim::Histogram;

/// The benchmark slice every layer is measured over: small, varied
/// pipeline shapes (copy-bound, GPU-bound, CPU-bound) so the checkpoint
/// tracks more than one corner of the simulator.
const BENCHMARKS: [&str; 5] = [
    "rodinia/kmeans",
    "rodinia/hotspot",
    "rodinia/bfs",
    "rodinia/backprop",
    "rodinia/nw",
];

fn job(benchmark: &str, scale: f64) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(scale)),
    ])
}

fn sweep_body(scale: f64) -> Json {
    Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(BENCHMARKS.iter().map(|b| job(b, scale)).collect()),
    )])
}

/// Today as `YYYY-MM-DD` (UTC), via the days-to-civil conversion.
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .expect("clock after 1970")
        .as_secs();
    let z = (secs / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("heteropipe-perf-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 64,
        ..ServerConfig::default()
    }
}

/// Layer 1: raw simulation wall time per benchmark (no cache in play).
fn sim_times(scale: f64) -> Vec<(String, f64)> {
    let engine = Engine::new().without_cache();
    BENCHMARKS
        .iter()
        .map(|b| {
            let entry = job(b, scale);
            let owned = parse_job_spec(&entry).expect("catalogue benchmark");
            let start = Instant::now();
            engine
                .try_execute(&owned.spec())
                .unwrap_or_else(|e| panic!("{b} failed: {e:?}"));
            ((*b).to_string(), start.elapsed().as_secs_f64() * 1e3)
        })
        .collect()
}

/// Layer 2: engine throughput over a fresh disk cache — first pass
/// executes (cold), then warm passes are answered by the cache. One
/// warm pass over five jobs finishes in tens of microseconds, which is
/// below the noise floor of a wall-clock measurement; warm passes
/// therefore repeat until a quarter second has elapsed and the rate is
/// taken over all of them, making the number stable enough for the
/// strict CI gate to compare across runs.
fn engine_throughput(scale: f64) -> (f64, f64, u64) {
    let dir = temp_dir("engine");
    let engine = Engine::new().with_cache_dir(&dir);
    let specs: Vec<_> = BENCHMARKS
        .iter()
        .map(|b| parse_job_spec(&job(b, scale)).expect("catalogue benchmark"))
        .collect();
    let pass = || {
        let start = Instant::now();
        for owned in &specs {
            engine
                .try_execute(&owned.spec())
                .expect("perf jobs execute");
        }
        specs.len() as f64 / start.elapsed().as_secs_f64()
    };
    let cold = pass();
    let warm_start = Instant::now();
    let mut warm_jobs = 0u64;
    while warm_start.elapsed().as_millis() < 250 {
        for owned in &specs {
            engine
                .try_execute(&owned.spec())
                .expect("perf jobs execute");
        }
        warm_jobs += specs.len() as u64;
    }
    let warm = warm_jobs as f64 / warm_start.elapsed().as_secs_f64();
    // A fresh engine over the same directory exercises the zero-copy
    // tier cold: every record is read and revalidated
    // (`engine.cache_validate`), never decoded — the path a restarted
    // server's `GET /v1/runs/{key}` takes.
    let reread = Engine::new().with_cache_dir(&dir);
    for owned in &specs {
        let key = heteropipe_engine::run_key(&owned.spec());
        assert!(
            reread.cached_bytes(key).is_some(),
            "zero-copy reread of a record the warm pass just served"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
    (cold, warm, specs.len() as u64)
}

/// Layer 2b: the always-on phase profiler's cost — warm-cache engine
/// throughput with `obs::profile` enabled vs disabled
/// ([`heteropipe_obs::profile::set_enabled`]). The target is under 3%
/// overhead; the report is informational and never fatal, because at
/// checkpoint scales run-to-run noise alone can exceed 3%.
fn profiler_overhead(scale: f64) -> Json {
    const PASSES: usize = 20;
    let dir = temp_dir("profiler");
    let engine = Engine::new().with_cache_dir(&dir);
    let specs: Vec<_> = BENCHMARKS
        .iter()
        .map(|b| parse_job_spec(&job(b, scale)).expect("catalogue benchmark"))
        .collect();
    let pass = || {
        let start = Instant::now();
        for _ in 0..PASSES {
            for owned in &specs {
                engine
                    .try_execute(&owned.spec())
                    .expect("perf jobs execute");
            }
        }
        (PASSES * specs.len()) as f64 / start.elapsed().as_secs_f64()
    };
    pass(); // first pass executes; everything after is warm cache hits
    heteropipe_obs::profile::set_enabled(true);
    let on = pass();
    heteropipe_obs::profile::set_enabled(false);
    let off = pass();
    heteropipe_obs::profile::set_enabled(true);
    let _ = std::fs::remove_dir_all(&dir);
    let overhead_pct = (1.0 - on / off) * 100.0;
    if overhead_pct > 3.0 {
        println!(
            "perf: NOTICE profiler overhead {overhead_pct:.1}% is above the 3% target \
             (informational; warm-path noise at this scale can exceed it)"
        );
        heteropipe_obs::log::warn(
            "perf",
            "profiler_overhead_above_target",
            &[("overhead_pct", overhead_pct.into())],
        );
    }
    Json::Obj(vec![
        ("warm_jobs_per_s_profiled".into(), Json::F64(on)),
        ("warm_jobs_per_s_unprofiled".into(), Json::F64(off)),
        ("overhead_pct".into(), Json::F64(overhead_pct)),
    ])
}

/// Layer 3: serving-path latency — an in-process server at steady state
/// (everything cache-hot after warmup) under a small client fleet. The
/// mix includes a warm `GET /v1/runs/{key}`, which rides the zero-copy
/// fast path (validated cached bytes, no decode).
fn serve_latency(scale: f64, threads: usize, requests: usize) -> Json {
    let handle = api::serve(server_cfg(), Arc::new(Engine::new().memory_cache_only()))
        .expect("bind perf server");
    let target = handle.addr().to_string();
    let mut mix: Vec<(&str, String, Option<Json>)> = vec![
        ("GET", "/healthz".into(), None),
        ("POST", "/v1/runs".into(), Some(job(BENCHMARKS[0], scale))),
        ("GET", "/metrics".into(), None),
        ("POST", "/v1/runs".into(), Some(job(BENCHMARKS[1], scale))),
    ];
    let mut warm = Client::new(target.clone());
    let mut report_path = None;
    for (method, path, body) in &mix {
        let resp = match (*method, body) {
            ("POST", Some(body)) => warm.post_json(path, body),
            _ => warm.get(path),
        }
        .expect("warmup request");
        assert_eq!(resp.status, 200, "warmup {method} {path}");
        if report_path.is_none() {
            if let Some(key) = resp.header("x-run-key") {
                report_path = Some(format!("/v1/runs/{key}"));
            }
        }
    }
    let report_path = report_path.expect("run key header on POST /v1/runs");
    assert_eq!(
        warm.get(&report_path).expect("warmup report read").status,
        200
    );
    mix.push(("GET", report_path, None));
    drop(warm);

    let start = Instant::now();
    let per_thread: Vec<Histogram> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let target = target.clone();
                let mix = &mix;
                s.spawn(move || {
                    let mut lat = Histogram::new();
                    let mut client = Client::new(target);
                    for i in 0..requests {
                        let (method, path, body) = &mix[(t + i) % mix.len()];
                        let sent = Instant::now();
                        let ok = match (*method, body) {
                            ("POST", Some(body)) => client.post_json(path, body),
                            _ => client.get(path),
                        }
                        .map(|r| r.status == 200)
                        .unwrap_or(false);
                        assert!(ok, "load request {method} {path} failed");
                        lat.record(sent.elapsed().as_micros() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();
    handle.shutdown_and_join();

    let mut lat = Histogram::new();
    for h in &per_thread {
        lat.merge(h);
    }
    Json::Obj(vec![
        ("requests".into(), Json::U64(lat.count())),
        (
            "req_per_s".into(),
            Json::F64(lat.count() as f64 / elapsed.as_secs_f64()),
        ),
        ("p50_us".into(), Json::U64(lat.percentile(0.50))),
        ("p90_us".into(), Json::U64(lat.percentile(0.90))),
        ("p99_us".into(), Json::U64(lat.percentile(0.99))),
    ])
}

/// Layer 4: the same cold sweep through one node and through a
/// 2-worker cluster (all caches fresh), as jobs/s.
fn sweep_throughput(scale: f64) -> Json {
    let body = sweep_body(scale);
    let jobs = BENCHMARKS.len() as f64;

    let dir_s = temp_dir("sweep-single");
    let single = api::serve(
        server_cfg(),
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(&dir_s)),
    )
    .expect("bind single node");
    let mut client = Client::new(single.addr().to_string());
    let start = Instant::now();
    let resp = client.post_json("/v1/sweeps", &body).expect("single sweep");
    assert_eq!(resp.status, 200);
    let single_jps = jobs / start.elapsed().as_secs_f64();
    single.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_s);

    let (dir_a, dir_b) = (temp_dir("sweep-a"), temp_dir("sweep-b"));
    let wa = api::serve(
        server_cfg(),
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(&dir_a)),
    )
    .expect("bind worker a");
    let wb = api::serve(
        server_cfg(),
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(&dir_b)),
    )
    .expect("bind worker b");
    let coordinator = serve_cluster(
        server_cfg(),
        ClusterConfig {
            workers: vec![wa.addr().to_string(), wb.addr().to_string()],
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator");
    let mut client = Client::new(coordinator.addr().to_string());
    let start = Instant::now();
    let resp = client
        .post_json("/v1/sweeps", &body)
        .expect("cluster sweep");
    assert_eq!(resp.status, 200);
    let cluster_jps = jobs / start.elapsed().as_secs_f64();
    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    Json::Obj(vec![
        ("workers".into(), Json::U64(2)),
        ("sweep_jobs".into(), Json::U64(jobs as u64)),
        ("single_node_jobs_per_s".into(), Json::F64(single_jps)),
        ("cluster_jobs_per_s".into(), Json::F64(cluster_jps)),
        ("speedup".into(), Json::F64(cluster_jps / single_jps)),
    ])
}

fn get_f64(v: &Json, path: &[&str]) -> Option<f64> {
    let mut cur = v;
    for p in path {
        cur = cur.get(p)?;
    }
    cur.as_f64()
}

/// The median of a checkpoint's per-benchmark sim wall times.
fn sim_median_ms(doc: &Json) -> Option<f64> {
    let list = doc.get("sim")?.get("benchmarks").and_then(Json::as_array)?;
    let mut xs: Vec<f64> = list
        .iter()
        .filter_map(|b| b.get("wall_ms").and_then(Json::as_f64))
        .collect();
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let mid = xs.len() / 2;
    Some(if xs.len() % 2 == 1 {
        xs[mid]
    } else {
        (xs[mid - 1] + xs[mid]) / 2.0
    })
}

/// Every retained checkpoint, parsed and name-sorted (oldest first).
/// Called *before* the fresh checkpoint is written: a file for today is
/// a valid baseline for a same-date rerun and must be read before it is
/// overwritten.
fn load_checkpoints() -> Vec<(String, Json)> {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| {
                    n.len() == "BENCH_0000-00-00.json".len()
                        && n.starts_with("BENCH_")
                        && n.ends_with(".json")
                })
                .collect()
        })
        .unwrap_or_default();
    names.sort();
    names
        .into_iter()
        .filter_map(|name| {
            let doc = Json::parse(&std::fs::read_to_string(&name).ok()?)?;
            Some((name, doc))
        })
        .collect()
}

/// Compares the fresh checkpoint against the latest earlier one. Only
/// collapses beyond `TOLERANCE`x fail by default: these files may come
/// from different machines, so the check is a tripwire, not a benchmark.
/// Under `HETEROPIPE_PERF_STRICT_PCT=<pct>` (set by ci.sh, where the
/// baseline comes from the same machine) warm engine throughput and the
/// median sim wall time must additionally stay within `<pct>`% of the
/// baseline — a hard failure, not a notice.
fn compare(current: &Json, date: &str, checkpoints: &[(String, Json)]) {
    const TOLERANCE: f64 = 4.0;
    let Some((latest, old)) = checkpoints.last() else {
        println!("perf: no earlier checkpoint to compare against");
        return;
    };
    println!("perf: comparing against {latest} ({TOLERANCE}x tolerance)");
    // Higher-is-better rates, and the latency tail where lower is better.
    let rates = [
        ["engine", "warm_jobs_per_s"],
        ["engine", "cold_jobs_per_s"],
        ["serve", "req_per_s"],
        ["cluster", "cluster_jobs_per_s"],
    ];
    for path in &rates {
        let (Some(was), Some(now)) = (get_f64(old, path), get_f64(current, path)) else {
            continue;
        };
        println!("  {}: {was:.1} -> {now:.1}", path.join("."));
        assert!(
            now * TOLERANCE >= was,
            "{} collapsed: {was:.1} -> {now:.1}",
            path.join(".")
        );
    }
    if let (Some(was), Some(now)) = (
        get_f64(old, &["serve", "p99_us"]),
        get_f64(current, &["serve", "p99_us"]),
    ) {
        println!("  serve.p99_us: {was:.0} -> {now:.0}");
        assert!(
            now <= was * TOLERANCE,
            "serve.p99_us collapsed: {was:.0} -> {now:.0}"
        );
    }
    // Cluster speedup history across every retained checkpoint (oldest
    // first, current run last): the tripwire above only sees the latest
    // file, but a slow drift below 1.0x shows up here.
    let mut history: Vec<String> = checkpoints
        .iter()
        .filter(|(name, _)| name.as_str() != format!("BENCH_{date}.json"))
        .filter_map(|(name, doc)| {
            let s = get_f64(doc, &["cluster", "speedup"])?;
            let when = name.trim_start_matches("BENCH_").trim_end_matches(".json");
            Some(format!("{when}={s:.2}x"))
        })
        .collect();
    if let Some(now) = get_f64(current, &["cluster", "speedup"]) {
        history.push(format!("{date}={now:.2}x"));
    }
    println!("  cluster.speedup history: {}", history.join(" "));

    // The strict gate: the tentpole's win must not erode. Anything past
    // the configured percentage on the two headline metrics is fatal.
    let strict_pct = std::env::var("HETEROPIPE_PERF_STRICT_PCT")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    if let Some(pct) = strict_pct {
        println!("perf: strict gate vs {latest} ({pct}% budget)");
        if let (Some(was), Some(now)) = (
            get_f64(old, &["engine", "warm_jobs_per_s"]),
            get_f64(current, &["engine", "warm_jobs_per_s"]),
        ) {
            println!("  engine.warm_jobs_per_s: {was:.1} -> {now:.1}");
            assert!(
                now >= was * (1.0 - pct / 100.0),
                "engine.warm_jobs_per_s regressed more than {pct}%: {was:.1} -> {now:.1}"
            );
        }
        if let (Some(was), Some(now)) = (sim_median_ms(old), sim_median_ms(current)) {
            println!("  sim median wall_ms: {was:.2} -> {now:.2}");
            assert!(
                now <= was * (1.0 + pct / 100.0),
                "sim median wall_ms regressed more than {pct}%: {was:.2} -> {now:.2}"
            );
        }
    }
}

fn main() {
    heteropipe_obs::log::init_from_env_or(Level::Warn);
    let args = heteropipe_bench::HarnessArgs::parse();
    let scale = args.scale.factor();
    let threads = args.threads.unwrap_or(4);
    let requests = args.requests.unwrap_or(100);
    let date = today();

    println!("perf: sim wall times (scale {scale})");
    let sims = sim_times(scale);
    for (name, ms) in &sims {
        println!("  {name}: {ms:.1} ms");
    }
    println!("perf: engine throughput");
    let (cold, warm, jobs) = engine_throughput(scale);
    println!("  cold {cold:.2} jobs/s, warm {warm:.1} jobs/s over {jobs} jobs");
    println!("perf: serving path ({threads} threads x {requests} requests)");
    let serve = serve_latency(scale, threads, requests);
    println!("  {}", serve.dump());
    println!("perf: cold sweep, single node vs 2-worker cluster");
    let cluster = sweep_throughput(scale);
    println!("  {}", cluster.dump());
    if let Some(speedup) = cluster.get("speedup").and_then(Json::as_f64) {
        if speedup < 1.0 {
            println!(
                "perf: NOTICE cluster sweep ran at {speedup:.2}x single-node throughput — \
                 coordination overhead dominates at this job count (docs/observability.md)"
            );
            heteropipe_obs::log::warn(
                "perf",
                "cluster_slower_than_single_node",
                &[("speedup", speedup.into())],
            );
        }
    }
    println!("perf: profiler overhead (enabled vs disabled, warm engine)");
    let profiler = profiler_overhead(scale);
    println!("  {}", profiler.dump());

    let doc = Json::Obj(vec![
        ("schema".into(), Json::U64(1)),
        ("date".into(), Json::str(date.clone())),
        ("scale".into(), Json::F64(scale)),
        (
            "sim".into(),
            Json::Obj(vec![(
                "benchmarks".into(),
                Json::Arr(
                    sims.iter()
                        .map(|(name, ms)| {
                            Json::Obj(vec![
                                ("name".into(), Json::str(name.clone())),
                                ("wall_ms".into(), Json::F64(*ms)),
                            ])
                        })
                        .collect(),
                ),
            )]),
        ),
        (
            "engine".into(),
            Json::Obj(vec![
                ("jobs".into(), Json::U64(jobs)),
                ("cold_jobs_per_s".into(), Json::F64(cold)),
                ("warm_jobs_per_s".into(), Json::F64(warm)),
            ]),
        ),
        ("serve".into(), serve),
        ("cluster".into(), cluster),
        ("profiler".into(), profiler),
        ("hot_phases".into(), hot_phases()),
    ]);
    // Read every retained checkpoint before the write below clobbers a
    // same-date predecessor: it is the comparison baseline.
    let checkpoints = load_checkpoints();
    let path = format!("BENCH_{date}.json");
    std::fs::write(&path, format!("{}\n", doc.dump())).expect("write checkpoint");
    println!("perf: wrote {path}");

    if std::env::var("HETEROPIPE_PERF_NO_COMPARE").map_or(true, |v| v.is_empty() || v == "0") {
        compare(&doc, &date, &checkpoints);
    } else {
        println!("perf: comparison skipped (HETEROPIPE_PERF_NO_COMPARE)");
    }
}

/// Process-wide counts for the hot-path phases the tentpole optimized:
/// the simulator's event-queue pops and the engine's cache fast path
/// (probe / zero-copy validate / full decode / execute). Counts cover
/// the whole perf run; the interesting signal is the ratio — warm reads
/// should validate, not decode.
fn hot_phases() -> Json {
    const HOT: [&str; 5] = [
        "sim.event_pop",
        "engine.cache_probe",
        "engine.cache_validate",
        "engine.cache_decode",
        "engine.execute",
    ];
    let snap = heteropipe_obs::profile::snapshot();
    Json::Obj(
        HOT.iter()
            .filter_map(|name| {
                let p = snap.iter().find(|p| p.name == *name)?;
                Some((
                    (*name).to_string(),
                    Json::Obj(vec![
                        ("count".into(), Json::U64(p.count)),
                        ("mean_ns".into(), Json::F64(p.mean_ns())),
                    ]),
                ))
            })
            .collect(),
    )
}
