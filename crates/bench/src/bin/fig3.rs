//! Regenerates Fig. 3 — the kmeans case study.

use heteropipe::experiments::fig3;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let rows = fig3::compute(args.scale);
    print!("{}", fig3::render(&rows));
}
