//! Regenerates Fig. 3 — the kmeans case study.

use heteropipe::experiments::fig3;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let rows = fig3::compute_with(&engine, args.scale);
    print!("{}", fig3::render(&rows));
    heteropipe_bench::finish(&engine);
}
