//! Regenerates Fig. 3 — the kmeans case study.
//!
//! A thin wrapper submitting the built-in `fig3` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig3");
}
