//! Runs the §VI optimization-direction studies: kernel fusion, model-driven
//! compute migration, and footprint-aware chunk sizing.

use heteropipe::experiments::extensions;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    println!(
        "{}",
        extensions::render_fusion(&extensions::fusion_study_with(&engine, args.scale))
    );
    println!(
        "{}",
        extensions::render_migrate_study(&extensions::migrate_study_with(&engine, args.scale))
    );
    println!(
        "{}",
        extensions::render_chunks(&extensions::chunk_suggestion_study_with(
            &engine, args.scale
        ))
    );
    heteropipe_bench::finish(&engine);
}
