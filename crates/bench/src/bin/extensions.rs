//! Runs the §VI optimization-direction studies: kernel fusion, model-driven
//! compute migration, and footprint-aware chunk sizing.
//!
//! A thin wrapper submitting the built-in `extensions` task graph (see
//! `heteropipe_flow::figures`); the three studies run as independent
//! stages.

fn main() {
    heteropipe_bench::run_figure("extensions");
}
