//! Runs the §VI optimization-direction studies: kernel fusion, model-driven
//! compute migration, and footprint-aware chunk sizing.

use heteropipe::experiments::extensions;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    print!(
        "{}\n",
        extensions::render_fusion(&extensions::fusion_study(args.scale))
    );
    print!(
        "{}\n",
        extensions::render_migrate_study(&extensions::migrate_study(args.scale))
    );
    print!(
        "{}\n",
        extensions::render_chunks(&extensions::chunk_suggestion_study(args.scale))
    );
}
