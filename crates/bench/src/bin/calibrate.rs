//! Calibration probe: per-benchmark component shares and copy-removal
//! ratios, used while tuning the workload models against the paper's
//! Fig. 6 distribution. Not part of the reproduction outputs.

use heteropipe::experiments::characterize_all_with;
use heteropipe::render::{pct, TextTable};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let pairs = characterize_all_with(&engine, args.scale);
    let mut t = TextTable::new(&[
        "benchmark",
        "copy roi",
        "copy%",
        "cpu%",
        "gpu%",
        "lim/copy",
        "faults",
        "lim cpu%",
        "lim gpu%",
    ]);
    for p in &pairs {
        let (c, u, g) = p.copy.busy.portions(p.copy.roi);
        let (_, lu, lg) = p.limited.busy.portions(p.limited.roi);
        t.row_owned(vec![
            p.meta.full_name(),
            p.copy.roi.to_string(),
            pct(c),
            pct(u),
            pct(g),
            format!("{:.2}", p.limited.roi.fraction_of(p.copy.roi)),
            p.limited.faults.to_string(),
            pct(lu),
            pct(lg),
        ]);
    }
    println!("{}", t.render());
    heteropipe_bench::finish(&engine);
}
