//! Runs every ablation sweep of DESIGN.md §5.

use heteropipe::experiments::ablations;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let sweeps = [
        ablations::chunk_sweep_with(&engine, args.scale),
        ablations::mlp_sweep_with(&engine, args.scale),
        ablations::l2_sweep_with(&engine, args.scale),
        ablations::fault_sweep_with(&engine, args.scale),
        ablations::pcie_sweep_with(&engine, args.scale),
        ablations::gpu_scaling_sweep_with(&engine, args.scale),
        ablations::spill_window_sweep_with(&engine, args.scale),
        ablations::alignment_sweep_with(&engine, args.scale),
    ];
    for s in &sweeps {
        println!("== {} vs {} ==", s.metric, s.parameter);
        println!("{}", s.render());
    }
    heteropipe_bench::finish(&engine);
}
