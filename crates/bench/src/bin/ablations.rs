//! Runs every ablation sweep of DESIGN.md §5.
//!
//! A thin wrapper submitting the built-in `ablations` task graph (see
//! `heteropipe_flow::figures`); the eight sweeps run as independent
//! stages.

fn main() {
    heteropipe_bench::run_figure("ablations");
}
