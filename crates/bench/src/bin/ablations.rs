//! Runs every ablation sweep of DESIGN.md §5.

use heteropipe::experiments::ablations;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let sweeps = [
        ablations::chunk_sweep(args.scale),
        ablations::mlp_sweep(args.scale),
        ablations::l2_sweep(args.scale),
        ablations::fault_sweep(args.scale),
        ablations::pcie_sweep(args.scale),
        ablations::gpu_scaling_sweep(args.scale),
        ablations::spill_window_sweep(args.scale),
        ablations::alignment_sweep(args.scale),
    ];
    for s in &sweeps {
        println!("== {} vs {} ==", s.metric, s.parameter);
        println!("{}", s.render());
    }
}
