//! Runs the full reproduction: every table, figure, validation, and
//! ablation, printing each section in order. This is what EXPERIMENTS.md is
//! generated from.
//!
//! A thin wrapper submitting the built-in `repro_all` task graph — the
//! union of every figure/table/study graph (see
//! `heteropipe_flow::figures`). The characterization that feeds Figs. 4-9
//! is one shared stage, simulated once; independent stages run
//! concurrently under the engine's job cap; and a repeat invocation
//! serves almost everything from `results/cache/`.

fn main() {
    heteropipe_bench::run_figure("repro_all");
}
