//! Runs the full reproduction: every table, figure, validation, and
//! ablation, printing each section in order. This is what EXPERIMENTS.md is
//! generated from.
//!
//! Every run goes through one shared [`heteropipe_engine::Engine`], so the
//! characterization that feeds Figs. 4-9 is simulated once, and a repeat
//! invocation serves almost everything from `results/cache/`.

use heteropipe::experiments::{
    ablations, beyond, characterize_all_with, extensions, fig3, fig456, fig78, fig9, sensitivity,
    tables, validate,
};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    println!("heteropipe full reproduction (scale {:?})\n", args.scale);

    println!("{}", tables::render_table1());
    println!("{}", tables::render_table2());

    let rows = fig3::compute_with(&engine, args.scale);
    println!("{}", fig3::render(&rows));

    let pairs = characterize_all_with(&engine, args.scale);
    println!("{}", fig456::render_fig4(&fig456::fig4(&pairs)));
    println!("{}", fig456::render_fig5(&fig456::fig5(&pairs)));
    println!(
        "{}",
        fig456::render_fig6_with_effects(&fig456::fig6(&pairs), &pairs)
    );
    println!("{}", fig78::render_fig7(&fig78::fig7(&pairs)));
    println!("{}", fig78::render_fig8(&fig78::fig8(&pairs)));
    println!("{}", fig9::render(&fig9::fig9(&pairs)));

    println!(
        "{}",
        validate::render_overlap(&validate::validate_overlap_with(&engine, args.scale))
    );
    println!(
        "{}",
        validate::render_migrate(&validate::validate_migrate_with(&engine, args.scale))
    );

    println!(
        "{}",
        beyond::render(&beyond::beyond46_with(&engine, args.scale))
    );

    println!(
        "{}",
        extensions::render_fusion(&extensions::fusion_study_with(&engine, args.scale))
    );
    println!(
        "{}",
        extensions::render_migrate_study(&extensions::migrate_study_with(&engine, args.scale))
    );
    println!(
        "{}",
        extensions::render_chunks(&extensions::chunk_suggestion_study_with(
            &engine, args.scale
        ))
    );

    for s in [
        ablations::chunk_sweep_with(&engine, args.scale),
        ablations::mlp_sweep_with(&engine, args.scale),
        ablations::l2_sweep_with(&engine, args.scale),
        ablations::fault_sweep_with(&engine, args.scale),
        ablations::pcie_sweep_with(&engine, args.scale),
        ablations::gpu_scaling_sweep_with(&engine, args.scale),
        ablations::spill_window_sweep_with(&engine, args.scale),
        ablations::alignment_sweep_with(&engine, args.scale),
    ] {
        println!("== ablation: {} vs {} ==", s.metric, s.parameter);
        println!("{}", s.render());
    }

    println!(
        "{}",
        sensitivity::render(&sensitivity::sensitivity_study_with(&engine, args.scale))
    );

    heteropipe_bench::finish(&engine);
}
