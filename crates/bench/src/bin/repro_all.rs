//! Runs the full reproduction: every table, figure, validation, and
//! ablation, printing each section in order. This is what EXPERIMENTS.md is
//! generated from.

use heteropipe::experiments::{
    ablations, beyond, characterize_all, extensions, fig3, fig456, fig78, fig9, sensitivity,
    tables, validate,
};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    println!("heteropipe full reproduction (scale {:?})\n", args.scale);

    print!("{}\n", tables::render_table1());
    print!("{}\n", tables::render_table2());

    let rows = fig3::compute(args.scale);
    print!("{}\n", fig3::render(&rows));

    let pairs = characterize_all(args.scale);
    print!("{}\n", fig456::render_fig4(&fig456::fig4(&pairs)));
    print!("{}\n", fig456::render_fig5(&fig456::fig5(&pairs)));
    print!(
        "{}\n",
        fig456::render_fig6_with_effects(&fig456::fig6(&pairs), &pairs)
    );
    print!("{}\n", fig78::render_fig7(&fig78::fig7(&pairs)));
    print!("{}\n", fig78::render_fig8(&fig78::fig8(&pairs)));
    print!("{}\n", fig9::render(&fig9::fig9(&pairs)));

    print!(
        "{}\n",
        validate::render_overlap(&validate::validate_overlap(args.scale))
    );
    print!(
        "{}\n",
        validate::render_migrate(&validate::validate_migrate(args.scale))
    );

    print!("{}\n", beyond::render(&beyond::beyond46(args.scale)));

    print!(
        "{}\n",
        extensions::render_fusion(&extensions::fusion_study(args.scale))
    );
    print!(
        "{}\n",
        extensions::render_migrate_study(&extensions::migrate_study(args.scale))
    );
    print!(
        "{}\n",
        extensions::render_chunks(&extensions::chunk_suggestion_study(args.scale))
    );

    for s in [
        ablations::chunk_sweep(args.scale),
        ablations::mlp_sweep(args.scale),
        ablations::l2_sweep(args.scale),
        ablations::fault_sweep(args.scale),
        ablations::pcie_sweep(args.scale),
        ablations::gpu_scaling_sweep(args.scale),
        ablations::spill_window_sweep(args.scale),
        ablations::alignment_sweep(args.scale),
    ] {
        println!("== ablation: {} vs {} ==", s.metric, s.parameter);
        println!("{}", s.render());
    }

    print!(
        "{}\n",
        sensitivity::render(&sensitivity::sensitivity_study(args.scale))
    );
}
