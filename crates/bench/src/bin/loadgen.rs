//! `loadgen`: load-generate against the simulation service.
//!
//! Starts an in-process server over a shared engine (or targets an
//! already-running one via `--addr`), replays a mixed request stream from
//! `--threads` concurrent clients, and reports throughput and latency
//! percentiles — aggregate first, then broken down per route of the
//! replayed mix. After a warmup pass the run jobs are all cache hits, so
//! the numbers measure the serving path, not the simulator.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin loadgen -- \
//!     --scale 0.08 --threads 8 --requests 200 [--csv]
//! ```

use std::sync::Arc;
use std::time::Instant;

use heteropipe_obs::log::Level;
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};
use heteropipe_sim::Histogram;

/// The replayed mix: light reads, cache-served runs, a small batched
/// sweep (with an in-batch duplicate) streamed as NDJSON, and a built-in
/// figure workflow (fully stage-memoized after warmup), weighted toward
/// the run endpoints the service exists for.
fn request_mix(scale: f64) -> Vec<(&'static str, &'static str, Option<Json>)> {
    let spec = |bench: &str| {
        Json::Obj(vec![
            ("benchmark".into(), Json::str(bench)),
            ("system".into(), Json::str("discrete")),
            ("organization".into(), Json::str("serial")),
            ("scale".into(), Json::F64(scale)),
        ])
    };
    let sweep = Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(vec![
            spec("rodinia/kmeans"),
            spec("rodinia/srad"),
            spec("rodinia/kmeans"),
        ]),
    )]);
    let workflow = Json::Obj(vec![
        ("workflow".into(), Json::str("fig3")),
        ("scale".into(), Json::F64(scale)),
    ]);
    vec![
        ("GET", "/healthz", None),
        ("POST", "/v1/runs", Some(spec("rodinia/kmeans"))),
        ("POST", "/v1/runs", Some(spec("rodinia/srad"))),
        ("GET", "/metrics", None),
        ("POST", "/v1/sweeps", Some(sweep)),
        ("POST", "/v1/workflows", Some(workflow)),
        ("POST", "/v1/runs", Some(spec("pannotia/pr"))),
        ("POST", "/v1/runs", Some(spec("rodinia/kmeans"))),
    ]
}

fn main() {
    // Quiet by default: per-request info logs from an in-process server
    // would swamp the load run. `HETEROPIPE_LOG=info` turns them on.
    heteropipe_obs::log::init_from_env_or(Level::Warn);
    let args = heteropipe_bench::HarnessArgs::parse();
    let threads = args.threads.unwrap_or(4);
    let requests = args.requests.unwrap_or(200);
    let scale = args.scale.factor();

    // Either drive a remote server or spin one up in-process.
    let (target, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let cfg = ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: threads.max(4),
                max_inflight: args.max_inflight.unwrap_or(256),
                ..ServerConfig::default()
            };
            let engine = Arc::new(args.engine());
            let handle = api::serve(cfg, Arc::clone(&engine))
                .unwrap_or_else(|e| panic!("could not bind server: {e}"));
            (handle.addr().to_string(), Some((handle, engine)))
        }
    };
    let mix = request_mix(scale);

    // Warmup: populate the engine cache so the timed phase measures the
    // serving path at steady state.
    let mut warm = Client::new(target.clone());
    for (method, path, body) in &mix {
        let resp = match (*method, body) {
            ("POST", Some(body)) => warm.post_json(path, body),
            _ => warm.get(path),
        }
        .unwrap_or_else(|e| panic!("warmup {method} {path} failed: {e}"));
        assert_eq!(resp.status, 200, "warmup {method} {path}: {}", resp.status);
    }
    drop(warm);

    let start = Instant::now();
    // Latency and error counts are kept per mix entry so the report can
    // break the aggregate down by route.
    let per_thread: Vec<Vec<(Histogram, u64)>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let target = target.clone();
                let mix = &mix;
                s.spawn(move || {
                    let mut routes: Vec<(Histogram, u64)> =
                        (0..mix.len()).map(|_| (Histogram::new(), 0)).collect();
                    let mut client = Client::new(target);
                    for i in 0..requests {
                        let slot = (t + i) % mix.len();
                        let (method, path, body) = &mix[slot];
                        let sent = Instant::now();
                        let ok = match (*method, body) {
                            ("POST", Some(body)) => client.post_json(path, body),
                            _ => client.get(path),
                        }
                        .map(|r| r.status == 200)
                        .unwrap_or(false);
                        routes[slot].0.record(sent.elapsed().as_micros() as u64);
                        if !ok {
                            routes[slot].1 += 1;
                        }
                    }
                    routes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut route_stats: Vec<(Histogram, u64)> =
        (0..mix.len()).map(|_| (Histogram::new(), 0)).collect();
    let mut lat = Histogram::new();
    let mut errors = 0u64;
    for thread_routes in &per_thread {
        for (slot, (h, e)) in thread_routes.iter().enumerate() {
            route_stats[slot].0.merge(h);
            route_stats[slot].1 += e;
            lat.merge(h);
            errors += e;
        }
    }
    let total = lat.count();
    let rps = total as f64 / elapsed.as_secs_f64();

    if args.csv {
        println!("threads,requests,errors,elapsed_s,req_per_s,p50_us,p90_us,p99_us,mean_us,max_us");
        println!(
            "{threads},{total},{errors},{:.3},{rps:.1},{},{},{},{:.1},{}",
            elapsed.as_secs_f64(),
            lat.percentile(0.50),
            lat.percentile(0.90),
            lat.percentile(0.99),
            lat.mean(),
            lat.max(),
        );
        println!("route,count,errors,p50_us,p99_us,max_us");
        for (slot, (method, path, _)) in mix.iter().enumerate() {
            let (h, e) = &route_stats[slot];
            println!(
                "{method} {path},{},{e},{},{},{}",
                h.count(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.max(),
            );
        }
    } else {
        println!("loadgen: {threads} threads x {requests} requests against {target}");
        println!(
            "  {total} requests in {:.3} s ({rps:.1} req/s), {errors} errors",
            elapsed.as_secs_f64()
        );
        println!(
            "  latency: p50 {} us, p90 {} us, p99 {} us, mean {:.1} us, max {} us",
            lat.percentile(0.50),
            lat.percentile(0.90),
            lat.percentile(0.99),
            lat.mean(),
            lat.max(),
        );
        println!("  per-route (mix order; duplicate rows are distinct bodies):");
        for (slot, (method, path, _)) in mix.iter().enumerate() {
            let (h, e) = &route_stats[slot];
            println!(
                "    {:<20} {:>6} reqs  p50 {:>7} us  p99 {:>7} us  max {:>8} us  {e} errors",
                format!("{method} {path}"),
                h.count(),
                h.percentile(0.50),
                h.percentile(0.99),
                h.max(),
            );
        }
    }

    if let Some((handle, engine)) = local {
        handle.shutdown_and_join();
        heteropipe_bench::finish(&engine);
    }
    assert_eq!(errors, 0, "load run saw non-200 responses");
}
