//! `loadgen`: load-generate against the simulation service.
//!
//! Starts an in-process server over a shared engine (or targets an
//! already-running one via `--addr`), replays a mixed request stream from
//! `--threads` concurrent clients, and reports throughput and latency
//! percentiles — aggregate first, then broken down per route of the
//! replayed mix. After a warmup pass the run jobs are all cache hits, so
//! the numbers measure the serving path, not the simulator.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin loadgen -- \
//!     --scale 0.08 --threads 8 --requests 200 [--csv]
//! ```
//!
//! With `--async` the sweep route goes through the durable job API
//! instead of synchronous streaming: submit with `?async=1`, poll the
//! status resource until the job settles, then fetch the journaled
//! `/records`, with each leg timed as its own route. `--deadline-ms <N>`
//! stamps every timed request with an `X-Deadline-Ms` budget. Tenant
//! throttles (429) and deadline aborts (504) are policy refusals, not
//! failures: they are tallied in their own per-route columns and do not
//! trip the final error check.

use std::sync::Arc;
use std::time::Instant;

use heteropipe_obs::log::Level;
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};
use heteropipe_sim::Histogram;

/// Per-route tally: latency plus the three ways a request can come back
/// without a result — hard errors, tenant throttles, deadline aborts.
struct RouteStat {
    lat: Histogram,
    errors: u64,
    throttled: u64,
    deadline: u64,
}

impl RouteStat {
    fn new() -> Self {
        RouteStat {
            lat: Histogram::new(),
            errors: 0,
            throttled: 0,
            deadline: 0,
        }
    }

    fn merge(&mut self, other: &RouteStat) {
        self.lat.merge(&other.lat);
        self.errors += other.errors;
        self.throttled += other.throttled;
        self.deadline += other.deadline;
    }

    /// Classifies one response status against the route's expected code.
    /// `None` (transport error) counts as an error.
    fn note(&mut self, status: Option<u16>, expect: u16) {
        match status {
            Some(429) => self.throttled += 1,
            Some(504) => self.deadline += 1,
            Some(s) if s == expect => {}
            _ => self.errors += 1,
        }
    }
}

/// The replayed mix: light reads, cache-served runs, a small batched
/// sweep (with an in-batch duplicate) streamed as NDJSON, and a built-in
/// figure workflow (fully stage-memoized after warmup), weighted toward
/// the run endpoints the service exists for.
fn request_mix(scale: f64) -> Vec<(&'static str, &'static str, Option<Json>)> {
    let spec = |bench: &str| {
        Json::Obj(vec![
            ("benchmark".into(), Json::str(bench)),
            ("system".into(), Json::str("discrete")),
            ("organization".into(), Json::str("serial")),
            ("scale".into(), Json::F64(scale)),
        ])
    };
    let sweep = Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(vec![
            spec("rodinia/kmeans"),
            spec("rodinia/srad"),
            spec("rodinia/kmeans"),
        ]),
    )]);
    let workflow = Json::Obj(vec![
        ("workflow".into(), Json::str("fig3")),
        ("scale".into(), Json::F64(scale)),
    ]);
    vec![
        ("GET", "/healthz", None),
        ("POST", "/v1/runs", Some(spec("rodinia/kmeans"))),
        ("POST", "/v1/runs", Some(spec("rodinia/srad"))),
        ("GET", "/metrics", None),
        ("POST", "/v1/sweeps", Some(sweep)),
        ("POST", "/v1/workflows", Some(workflow)),
        ("POST", "/v1/runs", Some(spec("pannotia/pr"))),
        ("POST", "/v1/runs", Some(spec("rodinia/kmeans"))),
    ]
}

/// Follows one async sweep end to end: `202` submit, status polls until
/// the job settles, then a `/records` fetch. Each leg is tallied under
/// its own route slot (submit at `submit_slot`, polls and the records
/// fetch at the two virtual slots after the mix).
fn run_async_sweep(
    client: &mut Client,
    body: &Json,
    extra: &[(&str, &str)],
    routes: &mut [RouteStat],
    submit_slot: usize,
    poll_slot: usize,
) {
    let sent = Instant::now();
    let resp = client.post_json_with_headers("/v1/sweeps?async=1", body, extra);
    routes[submit_slot]
        .lat
        .record(sent.elapsed().as_micros() as u64);
    let key = match &resp {
        Ok(r) if r.status == 202 => Json::parse(&String::from_utf8_lossy(&r.body))
            .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string)),
        _ => None,
    };
    routes[submit_slot].note(resp.ok().map(|r| r.status), 202);
    let Some(key) = key else { return };

    // Poll until the job settles. Warmed sweeps settle within a few
    // polls, so the bound is a hang guard, not a tuning knob.
    let mut done = false;
    for _ in 0..5000 {
        let sent = Instant::now();
        let resp = client.get_with_headers(&format!("/v1/sweeps/{key}"), extra);
        routes[poll_slot]
            .lat
            .record(sent.elapsed().as_micros() as u64);
        let state = match &resp {
            Ok(r) if r.status == 200 => Json::parse(&String::from_utf8_lossy(&r.body))
                .and_then(|v| v.get("state").and_then(Json::as_str).map(str::to_string)),
            _ => None,
        };
        routes[poll_slot].note(resp.ok().map(|r| r.status), 200);
        match state.as_deref() {
            Some("done") => {
                done = true;
                break;
            }
            Some("failed") => {
                routes[poll_slot].errors += 1;
                return;
            }
            _ => std::thread::sleep(std::time::Duration::from_millis(1)),
        }
    }
    if !done {
        routes[poll_slot].errors += 1;
        return;
    }

    let sent = Instant::now();
    let resp = client.get_with_headers(&format!("/v1/sweeps/{key}/records"), extra);
    routes[poll_slot + 1]
        .lat
        .record(sent.elapsed().as_micros() as u64);
    routes[poll_slot + 1].note(resp.ok().map(|r| r.status), 200);
}

fn main() {
    // Quiet by default: per-request info logs from an in-process server
    // would swamp the load run. `HETEROPIPE_LOG=info` turns them on.
    heteropipe_obs::log::init_from_env_or(Level::Warn);
    let args = heteropipe_bench::HarnessArgs::parse();
    let threads = args.threads.unwrap_or(4);
    let requests = args.requests.unwrap_or(200);
    let scale = args.scale.factor();
    let deadline_ms = args.deadline_ms.map(|ms| ms.to_string());

    // Either drive a remote server or spin one up in-process. Async mode
    // needs a durable server, so the local one gets a journal — at
    // `--journal-dir` if given, else in a throwaway temp directory.
    let mut journal_tmp: Option<std::path::PathBuf> = None;
    let (target, local) = match &args.addr {
        Some(addr) => (addr.clone(), None),
        None => {
            let cfg = ServerConfig {
                addr: "127.0.0.1:0".into(),
                threads: threads.max(4),
                max_inflight: args.max_inflight.unwrap_or(256),
                ..ServerConfig::default()
            };
            let engine = Arc::new(args.engine());
            let handle = if args.async_mode || args.journal_dir.is_some() {
                let dir = args.journal_dir.clone().unwrap_or_else(|| {
                    let d = std::env::temp_dir()
                        .join(format!("heteropipe-loadgen-journal-{}", std::process::id()));
                    journal_tmp = Some(d.clone());
                    d.to_string_lossy().into_owned()
                });
                let journal = heteropipe_engine::Journal::open(&dir)
                    .unwrap_or_else(|e| panic!("could not open journal at {dir}: {e}"));
                api::serve_durable(cfg, Arc::clone(&engine), Arc::new(journal))
            } else {
                api::serve(cfg, Arc::clone(&engine))
            }
            .unwrap_or_else(|e| panic!("could not bind server: {e}"));
            (handle.addr().to_string(), Some((handle, engine)))
        }
    };
    let mix = request_mix(scale);
    let sweep_slot = mix
        .iter()
        .position(|(m, p, _)| *m == "POST" && *p == "/v1/sweeps")
        .expect("mix has a sweep route");
    // Route labels for the report; async mode rewrites the sweep row and
    // appends the two virtual legs (polls, records fetch).
    let mut labels: Vec<String> = mix.iter().map(|(m, p, _)| format!("{m} {p}")).collect();
    if args.async_mode {
        labels[sweep_slot] = "POST /v1/sweeps?async=1".into();
        labels.push("GET /v1/sweeps/{key} (poll)".into());
        labels.push("GET /v1/sweeps/{key}/records".into());
    }
    let nroutes = labels.len();

    // Warmup: populate the engine cache so the timed phase measures the
    // serving path at steady state. Always synchronous and without the
    // deadline header — warmup does the real simulation work.
    let mut warm = Client::new(target.clone());
    for (method, path, body) in &mix {
        let resp = match (*method, body) {
            ("POST", Some(body)) => warm.post_json(path, body),
            _ => warm.get(path),
        }
        .unwrap_or_else(|e| panic!("warmup {method} {path} failed: {e}"));
        assert_eq!(resp.status, 200, "warmup {method} {path}: {}", resp.status);
    }
    drop(warm);

    // Headers for the timed phase: an API key so tenant buckets attribute
    // the traffic, and the optional deadline budget.
    let mut extra: Vec<(&str, &str)> = vec![("X-Api-Key", "loadgen")];
    if let Some(ms) = deadline_ms.as_deref() {
        extra.push(("X-Deadline-Ms", ms));
    }

    let start = Instant::now();
    // Latency and error counts are kept per mix entry so the report can
    // break the aggregate down by route.
    let per_thread: Vec<Vec<RouteStat>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let target = target.clone();
                let mix = &mix;
                let extra = &extra;
                let async_mode = args.async_mode;
                s.spawn(move || {
                    let mut routes: Vec<RouteStat> =
                        (0..nroutes).map(|_| RouteStat::new()).collect();
                    let mut client = Client::new(target);
                    for i in 0..requests {
                        let slot = (t + i) % mix.len();
                        let (method, path, body) = &mix[slot];
                        if async_mode && slot == sweep_slot {
                            let body = body.as_ref().expect("sweep route has a body");
                            run_async_sweep(&mut client, body, extra, &mut routes, slot, mix.len());
                            continue;
                        }
                        let sent = Instant::now();
                        let status = match (*method, body) {
                            ("POST", Some(body)) => {
                                client.post_json_with_headers(path, body, extra)
                            }
                            _ => client.get_with_headers(path, extra),
                        }
                        .ok()
                        .map(|r| r.status);
                        routes[slot].lat.record(sent.elapsed().as_micros() as u64);
                        routes[slot].note(status, 200);
                    }
                    routes
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let elapsed = start.elapsed();

    let mut route_stats: Vec<RouteStat> = (0..nroutes).map(|_| RouteStat::new()).collect();
    let mut agg = RouteStat::new();
    for thread_routes in &per_thread {
        for (slot, stat) in thread_routes.iter().enumerate() {
            route_stats[slot].merge(stat);
            agg.merge(stat);
        }
    }
    let (lat, errors) = (&agg.lat, agg.errors);
    let total = lat.count();
    let rps = total as f64 / elapsed.as_secs_f64();

    if args.csv {
        println!(
            "threads,requests,errors,throttled,deadline,elapsed_s,req_per_s,\
             p50_us,p90_us,p99_us,mean_us,max_us"
        );
        println!(
            "{threads},{total},{errors},{},{},{:.3},{rps:.1},{},{},{},{:.1},{}",
            agg.throttled,
            agg.deadline,
            elapsed.as_secs_f64(),
            lat.percentile(0.50),
            lat.percentile(0.90),
            lat.percentile(0.99),
            lat.mean(),
            lat.max(),
        );
        println!("route,count,errors,throttled,deadline,p50_us,p99_us,max_us");
        for (slot, label) in labels.iter().enumerate() {
            let r = &route_stats[slot];
            println!(
                "{label},{},{},{},{},{},{},{}",
                r.lat.count(),
                r.errors,
                r.throttled,
                r.deadline,
                r.lat.percentile(0.50),
                r.lat.percentile(0.99),
                r.lat.max(),
            );
        }
    } else {
        println!("loadgen: {threads} threads x {requests} requests against {target}");
        println!(
            "  {total} requests in {:.3} s ({rps:.1} req/s), {errors} errors, \
             {} throttled, {} deadline-aborted",
            elapsed.as_secs_f64(),
            agg.throttled,
            agg.deadline,
        );
        println!(
            "  latency: p50 {} us, p90 {} us, p99 {} us, mean {:.1} us, max {} us",
            lat.percentile(0.50),
            lat.percentile(0.90),
            lat.percentile(0.99),
            lat.mean(),
            lat.max(),
        );
        println!("  per-route (mix order; duplicate rows are distinct bodies):");
        for (slot, label) in labels.iter().enumerate() {
            let r = &route_stats[slot];
            println!(
                "    {:<28} {:>6} reqs  p50 {:>7} us  p99 {:>7} us  max {:>8} us  \
                 {} errors  {} throttled  {} deadline",
                label,
                r.lat.count(),
                r.lat.percentile(0.50),
                r.lat.percentile(0.99),
                r.lat.max(),
                r.errors,
                r.throttled,
                r.deadline,
            );
        }
    }

    if let Some((handle, engine)) = local {
        handle.shutdown_and_join();
        heteropipe_bench::finish(&engine);
    }
    if let Some(dir) = journal_tmp {
        let _ = std::fs::remove_dir_all(dir);
    }
    assert_eq!(errors, 0, "load run saw non-200 responses");
}
