//! Regenerates Table I — heterogeneous system parameters.

fn main() {
    let _ = heteropipe_bench::HarnessArgs::parse();
    print!("{}", heteropipe::experiments::tables::render_table1());
}
