//! Regenerates Table I — heterogeneous system parameters.
//!
//! A thin wrapper submitting the built-in `table1` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("table1");
}
