//! Regenerates Fig. 4 — memory footprint by component subset.

use heteropipe::experiments::{characterize_all_with, fig456};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let pairs = characterize_all_with(&engine, args.scale);
    let rows = fig456::fig4(&pairs);
    print!(
        "{}",
        if args.csv {
            fig456::csv_fig4(&rows)
        } else {
            fig456::render_fig4(&rows)
        }
    );
    heteropipe_bench::finish(&engine);
}
