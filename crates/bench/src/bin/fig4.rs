//! Regenerates Fig. 4 — memory footprint by component subset.
//!
//! A thin wrapper submitting the built-in `fig4` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig4");
}
