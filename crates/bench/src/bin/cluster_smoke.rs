//! `cluster_smoke`: end-to-end cluster smoke check for CI.
//!
//! Runs one coordinator over two workers on loopback and drives the
//! three behaviours the cluster exists for:
//!
//! 1. a cold sweep shards across both workers and its records are
//!    byte-identical to the same sweep on a single node;
//! 2. a warm repeat is answered entirely by the peer cache tier — zero
//!    executions anywhere;
//! 3. a worker that drops its connection mid-sweep and then dies
//!    outright costs rehashes, never a wrong or missing record.
//!
//! It also gates the cluster observability surface: the cold sweep's
//! stitched cross-node trace must be one valid Chrome array with a lane
//! per worker and the caller's request id on every span, and the
//! coordinator's federated `/metrics` exposition must parse with
//! worker-labeled series from both workers (docs/observability.md).
//!
//! Exits non-zero (panics) on any violation.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin cluster_smoke -- --scale 0.05
//! ```

use std::path::{Path, PathBuf};
use std::sync::Arc;

use heteropipe_cluster::{serve_cluster, ClusterConfig};
use heteropipe_engine::Engine;
use heteropipe_faults::{FaultPlan, Injector};
use heteropipe_obs::log::Level;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client, Json, ServerHandle};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "heteropipe-cluster-smoke-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn server_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        max_inflight: 32,
        ..ServerConfig::default()
    }
}

fn start_worker(cache_dir: &Path, plan: Option<&str>) -> ServerHandle {
    let mut cfg = server_cfg();
    if let Some(plan) = plan {
        cfg.faults = Arc::new(Injector::new(FaultPlan::parse(plan).expect("smoke plan")));
    }
    api::serve(
        cfg,
        Arc::new(Engine::new().with_jobs(2).with_cache_dir(cache_dir)),
    )
    .expect("bind worker")
}

fn job(benchmark: &str, scale: f64) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(scale)),
    ])
}

fn sweep_body(scale: f64) -> Json {
    Json::Obj(vec![(
        "jobs".into(),
        Json::Arr(vec![
            job("rodinia/kmeans", scale),
            job("rodinia/hotspot", scale),
            job("rodinia/bfs", scale),
            job("rodinia/backprop", scale),
            job("rodinia/nw", scale),
            job("rodinia/kmeans", scale), // in-batch duplicate
        ]),
    )])
}

/// Record lines in submission order (a single node streams in completion
/// order; the merge contract is over the records, not their interleaving).
fn record_lines(body: &[u8]) -> Vec<String> {
    let mut lines: Vec<String> = std::str::from_utf8(body)
        .expect("sweep stream is UTF-8")
        .lines()
        .filter(|l| !l.is_empty() && !l.starts_with("{\"sweep\":"))
        .map(str::to_owned)
        .collect();
    lines.sort_by_key(|l| {
        let rest = l.strip_prefix("{\"index\":").expect("record line");
        rest[..rest.find(',').unwrap()].parse::<usize>().unwrap()
    });
    lines
}

fn summary_field(body: &[u8], name: &str) -> u64 {
    let text = std::str::from_utf8(body).unwrap();
    let line = text
        .lines()
        .rev()
        .find(|l| l.starts_with("{\"sweep\":"))
        .expect("stream has a summary");
    Json::parse(line)
        .and_then(|s| {
            s.get("sweep")
                .and_then(|v| v.get(name))
                .and_then(Json::as_u64)
        })
        .unwrap_or_else(|| panic!("summary missing {name}"))
}

fn main() {
    heteropipe_obs::log::init_from_env_or(Level::Warn);
    let args = heteropipe_bench::HarnessArgs::parse();
    let scale = args.scale.factor();
    let body = sweep_body(scale);

    // Ground truth: the sweep on one isolated node.
    let dir_s = temp_dir("baseline");
    let single = start_worker(&dir_s, None);
    let mut client = Client::new(single.addr().to_string());
    let resp = client.post_json("/v1/sweeps", &body).expect("baseline");
    assert_eq!(resp.status, 200);
    let baseline = record_lines(&resp.body);
    single.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_s);
    println!(
        "cluster_smoke: single-node baseline ({} records)",
        baseline.len()
    );

    // Cluster one: two healthy workers.
    let (dir_a, dir_b) = (temp_dir("worker-a"), temp_dir("worker-b"));
    let wa = start_worker(&dir_a, None);
    let wb = start_worker(&dir_b, None);
    let coordinator = serve_cluster(
        server_cfg(),
        ClusterConfig {
            workers: vec![wa.addr().to_string(), wb.addr().to_string()],
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator");
    let mut client = Client::new(coordinator.addr().to_string());

    // 1. Cold sweep: byte-identical records, sharded across both workers.
    let rid = "req-cluster-smoke-cold";
    let resp = client
        .post_json_with_headers("/v1/sweeps", &body, &[("X-Request-Id", rid)])
        .expect("cold sweep");
    assert_eq!(resp.status, 200);
    let sweep_key = resp
        .header("x-sweep-key")
        .expect("cold sweep exposes its key")
        .to_string();
    assert_eq!(record_lines(&resp.body), baseline, "cold sweep records");
    assert_eq!(summary_field(&resp.body, "executed"), 5);
    assert_eq!(summary_field(&resp.body, "failed"), 0);
    let metrics = client.get("/metrics").expect("metrics").json().unwrap();
    let workers = metrics
        .get("cluster")
        .and_then(|c| c.get("workers"))
        .and_then(Json::as_array)
        .expect("worker stats");
    for w in workers {
        let forwarded = w.get("forwarded").and_then(Json::as_u64).unwrap();
        assert!(forwarded > 0, "a worker saw no traffic: {}", w.dump());
    }
    println!("cluster_smoke: cold sweep byte-identical, sharded across both workers");

    // 1b. The cold sweep's stitched cross-node trace: one Chrome array
    // with the coordinator lane plus a lane per worker, every span
    // carrying the originating request id (docs/observability.md).
    let trace = client
        .get(&format!("/v1/sweeps/{sweep_key}/trace"))
        .expect("stitched trace");
    assert_eq!(trace.status, 200);
    let text = std::str::from_utf8(&trace.body).expect("trace is UTF-8");
    let parsed = Json::parse(text).expect("stitched trace parses");
    let events = parsed.as_array().expect("trace is an array");
    assert!(text.contains("heteropipe-coordinator"), "coordinator lane");
    for addr in [wa.addr().to_string(), wb.addr().to_string()] {
        assert!(
            text.contains(&format!("worker {addr}")),
            "missing lane for worker {addr}"
        );
    }
    let mut spans = 0;
    for ev in events {
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        spans += 1;
        assert_eq!(
            ev.get("args")
                .and_then(|a| a.get("request_id"))
                .and_then(Json::as_str),
            Some(rid),
            "span missing the request id: {}",
            ev.dump()
        );
    }
    assert!(spans > 0, "stitched trace has spans");
    println!("cluster_smoke: stitched trace spans both workers' lanes ({spans} spans, one id)");

    // 1c. Federated metrics: the coordinator's Prometheus exposition
    // parses and carries worker-labeled series scraped live from both
    // workers' registries, with zero scrape errors on a healthy cluster.
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("prometheus metrics");
    assert_eq!(prom.status, 200);
    let prom_text = std::str::from_utf8(&prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(prom_text).expect("exposition parses");
    for addr in [wa.addr().to_string(), wb.addr().to_string()] {
        let executed = samples
            .iter()
            .find(|s| {
                s.name == "heteropipe_engine_jobs_executed_total"
                    && s.label("worker") == Some(addr.as_str())
            })
            .unwrap_or_else(|| panic!("no federated series for worker {addr}"));
        assert!(
            executed.value > 0.0,
            "worker {addr} federates zero executed jobs"
        );
        let errors: f64 = samples
            .iter()
            .filter(|s| {
                s.name == "heteropipe_cluster_scrape_errors_total"
                    && s.label("worker") == Some(addr.as_str())
            })
            .map(|s| s.value)
            .sum();
        assert_eq!(errors, 0.0, "scrape errors against a healthy {addr}");
    }
    println!("cluster_smoke: federated /metrics parses with worker-labeled series");

    // 2. Warm repeat: the peer tier answers everything, nothing executes.
    let resp = client.post_json("/v1/sweeps", &body).expect("warm sweep");
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "warm sweep records");
    assert_eq!(summary_field(&resp.body, "executed"), 0, "warm executes");
    assert_eq!(summary_field(&resp.body, "peer_cache_hits"), 5);
    println!("cluster_smoke: warm repeat served from peer caches, zero executions");

    coordinator.shutdown_and_join();
    wa.shutdown_and_join();
    wb.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);

    // Cluster two, fresh caches: worker D tears down its first response
    // mid-write — a worker dying mid-sweep from the coordinator's point
    // of view. The coordinator masks it, rehashes its shard onto C, and
    // the records do not change.
    let (dir_c, dir_d) = (temp_dir("worker-c"), temp_dir("worker-d"));
    let wc = start_worker(&dir_c, None);
    let wd = start_worker(&dir_d, Some("serve.write:err=drop:max=1"));
    let coordinator = serve_cluster(
        server_cfg(),
        ClusterConfig {
            workers: vec![wc.addr().to_string(), wd.addr().to_string()],
            ..ClusterConfig::default()
        },
    )
    .expect("bind coordinator");
    let mut client = Client::new(coordinator.addr().to_string());

    let resp = client.post_json("/v1/sweeps", &body).expect("chaos sweep");
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "mid-sweep drop records");
    assert_eq!(summary_field(&resp.body, "failed"), 0);
    assert!(
        summary_field(&resp.body, "rehashes") >= 1,
        "the dropped response forced a rehash"
    );
    println!("cluster_smoke: mid-sweep connection drop self-healed");

    // The worker then dies outright; repeats still answer identically.
    wd.shutdown_and_join();
    let resp = client.post_json("/v1/sweeps", &body).expect("post-death");
    assert_eq!(resp.status, 200);
    assert_eq!(record_lines(&resp.body), baseline, "after worker death");
    assert_eq!(summary_field(&resp.body, "failed"), 0);
    println!("cluster_smoke: worker death rehashed, records unchanged");

    coordinator.shutdown_and_join();
    wc.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir_c);
    let _ = std::fs::remove_dir_all(&dir_d);
    println!("cluster_smoke: PASS");
}
