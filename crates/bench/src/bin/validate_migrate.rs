//! Regenerates the §V-B migrated-compute model validation.
//!
//! A thin wrapper submitting the built-in `validate_migrate` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("validate_migrate");
}
