//! Regenerates the §V-B migrated-compute model validation.

use heteropipe::experiments::validate;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let rows = validate::validate_migrate(args.scale);
    print!("{}", validate::render_migrate(&rows));
}
