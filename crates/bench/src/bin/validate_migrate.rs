//! Regenerates the §V-B migrated-compute model validation.

use heteropipe::experiments::validate;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let rows = validate::validate_migrate_with(&engine, args.scale);
    print!("{}", validate::render_migrate(&rows));
    heteropipe_bench::finish(&engine);
}
