//! Regenerates Fig. 8 — migrated-compute run time estimates (Eq. 2-4).
//!
//! A thin wrapper submitting the built-in `fig8` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig8");
}
