//! Regenerates Fig. 7 — component-overlap run time estimates (Eq. 1).
//!
//! A thin wrapper submitting the built-in `fig7` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig7");
}
