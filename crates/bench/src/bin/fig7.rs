//! Regenerates Fig. 7 — component-overlap run time estimates (Eq. 1).

use heteropipe::experiments::{characterize_all_with, fig78};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let pairs = characterize_all_with(&engine, args.scale);
    let rows = fig78::fig7(&pairs);
    print!(
        "{}",
        if args.csv {
            fig78::csv_estimates(&rows)
        } else {
            fig78::render_fig7(&rows)
        }
    );
    heteropipe_bench::finish(&engine);
}
