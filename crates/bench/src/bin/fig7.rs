//! Regenerates Fig. 7 — component-overlap run time estimates (Eq. 1).

use heteropipe::experiments::{characterize_all, fig78};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let pairs = characterize_all(args.scale);
    let rows = fig78::fig7(&pairs);
    print!(
        "{}",
        if args.csv {
            fig78::csv_estimates(&rows)
        } else {
            fig78::render_fig7(&rows)
        }
    );
}
