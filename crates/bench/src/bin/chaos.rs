//! `chaos`: the CI fault-injection gate.
//!
//! Replays a pinned fault plan end-to-end — HTTP client → server seams →
//! engine retries → cache persistence — and proves the resilience layer
//! absorbs every injected fault:
//!
//! 1. **Baseline**: a fault-free server executes a fixed job list; the
//!    response bytes are the reference output.
//! 2. **Chaos**: a fresh server runs the same jobs under a fixed-seed
//!    plan (exec panics, ENOSPC on cache persists, torn/stalled
//!    connections). The client retries like a real caller (honoring
//!    `Retry-After`); every job must eventually succeed with responses
//!    **byte-identical** to the baseline, with zero unrecovered faults
//!    (no persist failures, no quarantined jobs) and every fault budget
//!    actually spent.
//! 3. **Self-heal**: one cache record is deliberately bit-flipped on
//!    disk; a fresh fault-free engine over the same cache must detect
//!    the corruption, quarantine the record, transparently re-execute,
//!    and again answer byte-identically.
//! 4. **Durability**: a durable server runs an async sweep under
//!    `journal.append` / `journal.replay` faults. The faulted submit is
//!    refused with `503` + `Retry-After` (never run undurably), the
//!    resubmit journals and completes, the faulted records fetch is
//!    refused then the retry reconstructs the synchronous stream
//!    byte-identically, and an on-disk rotted segment is quarantined
//!    instead of served.
//!
//! All probabilities in the plans are 1.0 with firing budgets (`max=`),
//! so the run is deterministic regardless of thread interleaving. Exits
//! non-zero on any failure, so `ci.sh` can gate on it.

use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use heteropipe_engine::Engine;
use heteropipe_faults::{FaultPlan, Injector, RetryPolicy};
use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client, ClientResponse};

/// Engine-side plan: the first three execution attempts panic, the first
/// four cache persists hit ENOSPC. Budgets sit well under the retry
/// policy's five attempts, so every fault is absorbable.
const ENGINE_PLAN: &str = "seed=48879;job.exec:err=panic:max=3;cache.write:err=enospc:max=4";

/// Server-side plan: one accepted connection abandoned, two torn before
/// the request is read, two responses stalled 25 ms before writing.
const SERVER_PLAN: &str =
    "seed=51966;serve.accept:err=drop:max=1;serve.read:err=drop:max=2;serve.write:err=hang:ms=25:max=2";

/// Journal-side plan for the durability phase: the first append (the
/// async submit's intent write) hits ENOSPC, and the first *records
/// fetch* replay hits EIO. Every async submit also replays once for
/// sealed-segment adoption — the two `after=` skips cover those probes
/// (initial submit + resubmit) so the EIO lands on the fetch itself.
/// Both faults must surface as 503s the caller can retry past, never as
/// lost or undurable work.
const JOURNAL_PLAN: &str =
    "seed=7;journal.append:err=enospc:max=1;journal.replay:err=eio:after=2:max=1";

/// Total firings the budgets above pin: 3 + 4 engine-side, 1 + 2 + 2
/// server-side, 1 + 1 journal-side. The run asserts these exactly —
/// fewer means a seam went dead, more means a budget leaked.
const ENGINE_FAULTS_EXPECTED: u64 = 7;
const SERVER_FAULTS_EXPECTED: u64 = 5;
const JOURNAL_FAULTS_EXPECTED: u64 = 2;

fn job_list() -> Vec<Json> {
    let job = |benchmark: &str, system: &str, organization: Json| {
        Json::Obj(vec![
            ("benchmark".into(), Json::str(benchmark)),
            ("system".into(), Json::str(system)),
            ("organization".into(), organization),
            ("scale".into(), Json::F64(0.08)),
        ])
    };
    let streams = Json::Obj(vec![("async_streams".into(), Json::U64(2))]);
    let chunks = Json::Obj(vec![("chunked_parallel".into(), Json::U64(4))]);
    vec![
        job("rodinia/kmeans", "discrete", Json::str("serial")),
        job("rodinia/kmeans", "heterogeneous", Json::str("serial")),
        job("rodinia/btree", "discrete", streams),
        job("rodinia/lavamd", "heterogeneous", chunks),
        job("rodinia/myocyte", "discrete", Json::str("serial")),
    ]
}

fn server_config(faults: Arc<Injector>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        max_inflight: 16,
        faults,
        ..ServerConfig::default()
    }
}

/// Posts one run like a resilient caller: fresh connection per attempt,
/// retrying on connection errors and 5xx. A real client would sleep the
/// full `Retry-After`; CI scales it down (seconds → 100 ms) to keep the
/// gate fast while still exercising the header.
fn post_with_retries(addr: &str, body: &Json) -> ClientResponse {
    let mut last = String::new();
    for _ in 0..10 {
        let mut client = Client::new(addr.to_string()).with_timeout(Duration::from_secs(5));
        match client.post_json("/v1/run", body) {
            Ok(resp) if resp.status == 200 => return resp,
            Ok(resp) => {
                let hint: u64 = resp
                    .header("retry-after")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(0);
                last = format!("status {}", resp.status);
                std::thread::sleep(Duration::from_millis(50 + hint * 100));
            }
            Err(e) => {
                last = e.to_string();
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    panic!("job did not recover within 10 attempts (last: {last})");
}

/// Extracts the per-job record lines from a sweep NDJSON body, sorted by
/// their `index` field. The synchronous stream is completion-ordered and
/// ends with a timing summary; `/records` is index-ordered with no
/// summary — this normalizes both to the same comparable form. The
/// record lines themselves are timing-free and byte-stable.
fn sorted_records(body: &[u8]) -> Vec<String> {
    let text = String::from_utf8_lossy(body);
    let mut records: Vec<(u64, String)> = text
        .lines()
        .filter_map(|line| {
            let v = Json::parse(line)?;
            let idx = v.get("index").and_then(Json::as_u64)?;
            Some((idx, line.to_string()))
        })
        .collect();
    records.sort_by_key(|&(i, _)| i);
    records.into_iter().map(|(_, l)| l).collect()
}

/// Flips one byte in the middle of the first cache record under `dir`,
/// returning the path it corrupted.
fn corrupt_one_record(dir: &Path) -> std::path::PathBuf {
    let mut records: Vec<_> = std::fs::read_dir(dir)
        .expect("cache dir readable")
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "hpr"))
        .collect();
    records.sort();
    let victim = records.first().expect("at least one cache record").clone();
    let mut bytes = std::fs::read(&victim).expect("read record");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    std::fs::write(&victim, bytes).expect("write corrupted record");
    victim
}

fn main() {
    obs_log::init_from_env_or(Level::Warn);
    let jobs = job_list();
    let tmp = std::env::temp_dir().join(format!("heteropipe-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);

    // Phase 1 — baseline: fault-free run, reference bytes.
    let baseline: Vec<Vec<u8>> = {
        let engine = Arc::new(Engine::new().with_cache_dir(tmp.join("baseline")));
        let handle = api::serve(server_config(Arc::new(Injector::disabled())), engine)
            .expect("bind baseline server");
        let addr = handle.addr().to_string();
        let bodies = jobs
            .iter()
            .map(|job| {
                let resp = Client::new(addr.clone())
                    .post_json("/v1/run", job)
                    .expect("baseline request");
                assert_eq!(resp.status, 200, "baseline run must succeed");
                resp.body
            })
            .collect();
        handle.shutdown_and_join();
        bodies
    };
    eprintln!("chaos: baseline captured ({} jobs)", baseline.len());

    // Phase 2 — chaos: same jobs under the pinned fault plans.
    let chaos_dir = tmp.join("chaos");
    let engine_faults = Arc::new(Injector::new(
        FaultPlan::parse(ENGINE_PLAN).expect("engine plan parses"),
    ));
    let server_faults = Arc::new(Injector::new(
        FaultPlan::parse(SERVER_PLAN).expect("server plan parses"),
    ));
    let engine = Arc::new(
        Engine::new()
            .with_cache_dir(&chaos_dir)
            .with_faults(Arc::clone(&engine_faults))
            .with_retry(RetryPolicy::DEFAULT),
    );
    let handle = api::serve(
        server_config(Arc::clone(&server_faults)),
        Arc::clone(&engine),
    )
    .expect("bind chaos server");
    let addr = handle.addr().to_string();
    for (i, job) in jobs.iter().enumerate() {
        let resp = post_with_retries(&addr, job);
        assert_eq!(
            resp.body, baseline[i],
            "chaos job {i} must answer byte-identically to the baseline"
        );
    }

    let m = engine.metrics();
    assert_eq!(m.jobs_quarantined, 0, "no job may exhaust its retries");
    assert_eq!(m.cache.persist_failures, 0, "no persist may fail for good");
    assert!(m.exec_retries >= 1, "exec panics were retried");
    assert!(m.cache.persist_retries >= 1, "persist faults were retried");
    assert!(m.recoveries() >= 1, "recoveries roll up into the snapshot");
    assert_eq!(
        engine_faults.total_fired(),
        ENGINE_FAULTS_EXPECTED,
        "every engine-side fault budget spent exactly"
    );
    assert_eq!(
        server_faults.total_fired(),
        SERVER_FAULTS_EXPECTED,
        "every server-side fault budget spent exactly"
    );

    // The scrape surface must expose the injections and still validate.
    let prom = Client::new(addr.clone())
        .get("/metrics?format=prometheus")
        .expect("GET /metrics");
    let text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let injected_total: f64 = samples
        .iter()
        .filter(|s| s.name == "heteropipe_faults_injected_total")
        .map(|s| s.value)
        .sum();
    assert_eq!(
        injected_total,
        (ENGINE_FAULTS_EXPECTED + SERVER_FAULTS_EXPECTED) as f64,
        "fault counter reconciles with both injectors"
    );
    handle.shutdown_and_join();
    eprintln!(
        "chaos: {} faults injected, all absorbed ({} exec retries, {} persist retries)",
        engine_faults.total_fired() + server_faults.total_fired(),
        m.exec_retries,
        m.cache.persist_retries,
    );

    // Phase 3 — self-heal: corrupt one record on disk, then serve the
    // same jobs from a fresh fault-free engine over that cache.
    let victim = corrupt_one_record(&chaos_dir);
    let engine = Arc::new(Engine::new().with_cache_dir(&chaos_dir));
    let handle = api::serve(
        server_config(Arc::new(Injector::disabled())),
        Arc::clone(&engine),
    )
    .expect("bind self-heal server");
    let addr = handle.addr().to_string();
    for (i, job) in jobs.iter().enumerate() {
        let resp = Client::new(addr.clone())
            .post_json("/v1/run", job)
            .expect("self-heal request");
        assert_eq!(resp.status, 200, "self-heal run must succeed");
        assert_eq!(
            resp.body, baseline[i],
            "self-healed job {i} must answer byte-identically to the baseline"
        );
    }
    let m = engine.metrics();
    assert_eq!(
        m.cache.records_quarantined, 1,
        "exactly the corrupted record is quarantined"
    );
    let quarantined = std::fs::read_dir(chaos_dir.join(".quarantine"))
        .expect("quarantine dir exists")
        .flatten()
        .count();
    assert_eq!(quarantined, 1, "corrupted record moved aside, not deleted");
    assert!(
        victim.exists(),
        "re-execution rewrote the healed record in place"
    );
    handle.shutdown_and_join();
    eprintln!("chaos: self-heal ok (quarantined 1 record and re-executed)");

    // Phase 4 — durability: an async sweep under journal faults.
    let durable_dir = tmp.join("durable");
    let journal_faults = Arc::new(Injector::new(
        FaultPlan::parse(JOURNAL_PLAN).expect("journal plan parses"),
    ));
    let engine = Arc::new(Engine::new().with_cache_dir(durable_dir.join("cache")));
    let journal = heteropipe_engine::Journal::open(durable_dir.join("journal"))
        .expect("open journal")
        .with_faults(Arc::clone(&journal_faults));
    let handle = api::serve_durable(
        server_config(Arc::new(Injector::disabled())),
        Arc::clone(&engine),
        Arc::new(journal),
    )
    .expect("bind durable server");
    let addr = handle.addr().to_string();
    let sweep_body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs.clone()))]);

    // Reference: the synchronous stream over the same (cold) cache.
    let mut client = Client::new(addr.clone()).with_timeout(Duration::from_secs(60));
    let sync = client
        .post_json("/v1/sweeps", &sweep_body)
        .expect("sync sweep");
    assert_eq!(sync.status, 200, "reference sweep must succeed");
    let reference = sorted_records(&sync.body);
    assert_eq!(reference.len(), jobs.len(), "one record per job");

    // The first async submit lands on the ENOSPC append fault: the
    // journal is unavailable, so the server refuses durably with a
    // retryable 503 instead of accepting work it could lose.
    let refused = client
        .post_json("/v1/sweeps?async=1", &sweep_body)
        .expect("faulted submit");
    assert_eq!(refused.status, 503, "append fault refuses the submit");
    assert!(
        refused.header("retry-after").is_some(),
        "journal refusal carries Retry-After"
    );

    // The budget is spent; the resubmit journals and is accepted.
    let accepted = client
        .post_json("/v1/sweeps?async=1", &sweep_body)
        .expect("resubmit");
    assert_eq!(accepted.status, 202, "resubmit is accepted");
    let key = Json::parse(&String::from_utf8_lossy(&accepted.body))
        .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string))
        .expect("202 body carries the sweep key");
    let mut state = String::new();
    for _ in 0..600 {
        let resp = client
            .get(&format!("/v1/sweeps/{key}"))
            .expect("status poll");
        assert_eq!(resp.status, 200, "status poll");
        state = Json::parse(&String::from_utf8_lossy(&resp.body))
            .and_then(|v| v.get("state").and_then(Json::as_str).map(str::to_string))
            .expect("status body carries state");
        if state == "done" || state == "failed" {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(state, "done", "async sweep settles");

    // First records fetch hits the EIO replay fault and is refused; the
    // retry reconstructs the synchronous stream byte-identically.
    let faulted = client
        .get(&format!("/v1/sweeps/{key}/records"))
        .expect("faulted records fetch");
    assert_eq!(faulted.status, 503, "replay fault refuses the fetch");
    let records = client
        .get(&format!("/v1/sweeps/{key}/records"))
        .expect("records fetch");
    assert_eq!(records.status, 200, "records fetch succeeds after retry");
    assert_eq!(
        sorted_records(&records.body),
        reference,
        "journaled records reconstruct the synchronous stream"
    );
    assert_eq!(
        journal_faults.total_fired(),
        JOURNAL_FAULTS_EXPECTED,
        "every journal fault budget spent exactly"
    );

    // Rot a middle line of the sealed segment on disk: the next fetch
    // must quarantine the segment and report nothing journaled rather
    // than serve a stream it cannot vouch for.
    let seg = durable_dir.join("journal").join(format!("{key}.jnl"));
    let mut lines: Vec<String> = std::fs::read_to_string(&seg)
        .expect("read segment")
        .lines()
        .map(String::from)
        .collect();
    assert!(lines.len() >= 3, "segment has intent, records, and seal");
    let mut rotted = lines[1].clone().into_bytes();
    rotted[0] ^= 0x01;
    lines[1] = String::from_utf8(rotted).expect("single-bit rot stays UTF-8");
    std::fs::write(&seg, format!("{}\n", lines.join("\n"))).expect("write rotted segment");
    let gone = client
        .get(&format!("/v1/sweeps/{key}/records"))
        .expect("post-rot fetch");
    assert_eq!(gone.status, 404, "rotted segment reports nothing journaled");
    let quarantined = std::fs::read_dir(durable_dir.join("journal").join(".quarantine"))
        .expect("journal quarantine dir exists")
        .flatten()
        .count();
    assert_eq!(quarantined, 1, "rotted segment moved aside, not deleted");
    handle.shutdown_and_join();

    let _ = std::fs::remove_dir_all(&tmp);
    eprintln!("chaos: ok (durability refused, resumed, and quarantined under journal faults)");
}
