//! Regenerates Fig. 9 — off-chip memory accesses by cause.

use heteropipe::experiments::{characterize_all_with, fig9};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let pairs = characterize_all_with(&engine, args.scale);
    let rows = fig9::fig9(&pairs);
    print!(
        "{}",
        if args.csv {
            fig9::csv(&rows)
        } else {
            fig9::render(&rows)
        }
    );
    heteropipe_bench::finish(&engine);
}
