//! Regenerates Fig. 9 — off-chip memory accesses by cause.

use heteropipe::experiments::{characterize_all, fig9};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let pairs = characterize_all(args.scale);
    let rows = fig9::fig9(&pairs);
    print!(
        "{}",
        if args.csv {
            fig9::csv(&rows)
        } else {
            fig9::render(&rows)
        }
    );
}
