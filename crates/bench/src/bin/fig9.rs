//! Regenerates Fig. 9 — off-chip memory accesses by cause.
//!
//! A thin wrapper submitting the built-in `fig9` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig9");
}
