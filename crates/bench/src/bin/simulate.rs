//! General-purpose driver: run any registered benchmark on either system
//! under any organization, print the full report, and optionally export a
//! Chrome trace.
//!
//! ```sh
//! simulate --bench rodinia/kmeans --platform hetero --org chunked:8 \
//!          --scale 0.5 --trace /tmp/kmeans.json
//! simulate --list
//! ```

use heteropipe::render::{pct, TextTable};
use heteropipe::trace::to_chrome_json;
use heteropipe::{run, AccessClass, Organization, SystemConfig};
use heteropipe_workloads::{registry, Scale};

struct Args {
    bench: String,
    platform: SystemConfig,
    org: Organization,
    scale: Scale,
    trace: Option<String>,
}

const USAGE: &str = "usage: simulate --bench <suite/name> [--platform discrete|hetero] \
[--org serial|streams:<n>|chunked:<n>] [--scale <f64>] [--trace <path>] | --list";

fn parse() -> Result<Args, String> {
    let mut bench = None;
    let mut platform = SystemConfig::discrete();
    let mut org = Organization::Serial;
    let mut scale = Scale::PAPER;
    let mut trace = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => {
                for w in registry::examined() {
                    println!("{}", w.meta.full_name());
                }
                std::process::exit(0);
            }
            "--bench" => bench = it.next(),
            "--platform" => match it.next().as_deref() {
                Some("discrete") => platform = SystemConfig::discrete(),
                Some("hetero") | Some("heterogeneous") => platform = SystemConfig::heterogeneous(),
                other => return Err(format!("bad --platform {other:?}; {USAGE}")),
            },
            "--org" => {
                let v = it.next().unwrap_or_default();
                org = if v == "serial" {
                    Organization::Serial
                } else if let Some(n) = v.strip_prefix("streams:") {
                    Organization::AsyncStreams {
                        streams: n.parse().map_err(|_| format!("bad stream count {n}"))?,
                    }
                } else if let Some(n) = v.strip_prefix("chunked:") {
                    Organization::ChunkedParallel {
                        chunks: n.parse().map_err(|_| format!("bad chunk count {n}"))?,
                    }
                } else {
                    return Err(format!("bad --org {v}; {USAGE}"));
                };
            }
            "--scale" => {
                let v = it
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .ok_or_else(|| "--scale needs a number".to_string())?;
                scale = Scale::new(v);
            }
            "--trace" => trace = it.next(),
            other => return Err(format!("unknown argument {other}; {USAGE}")),
        }
    }
    Ok(Args {
        bench: bench.ok_or_else(|| USAGE.to_string())?,
        platform,
        org,
        scale,
        trace,
    })
}

fn main() {
    let args = match parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let w = match registry::find(&args.bench) {
        Some(w) if w.meta.examined => w,
        _ => {
            eprintln!("unknown or unexamined benchmark {}; try --list", args.bench);
            std::process::exit(2);
        }
    };
    let pipeline = w.pipeline(args.scale).expect("examined workloads build");
    let (r, spans) = run::run_traced(
        &pipeline,
        &args.platform,
        args.org,
        w.meta.misalignment_sensitive,
    );

    println!(
        "{} on {} under {} (scale {:?})\n",
        r.benchmark, r.platform, r.organization, args.scale
    );
    let mut t = TextTable::new(&["metric", "value"]);
    let (p, c, g) = r.busy.portions(r.roi);
    t.row_owned(vec!["region of interest".into(), r.roi.to_string()]);
    t.row_owned(vec![
        "copy busy".into(),
        format!("{} ({})", r.busy.copy, pct(p)),
    ]);
    t.row_owned(vec![
        "cpu busy".into(),
        format!("{} ({})", r.busy.cpu, pct(c)),
    ]);
    t.row_owned(vec![
        "gpu busy".into(),
        format!("{} ({})", r.busy.gpu, pct(g)),
    ]);
    t.row_owned(vec!["gpu utilization".into(), pct(r.gpu_utilization())]);
    t.row_owned(vec![
        "accesses (copy/cpu/gpu)".into(),
        format!("{} / {} / {}", r.accesses[0], r.accesses[1], r.accesses[2]),
    ]);
    t.row_owned(vec![
        "off-chip".into(),
        format!(
            "{} fetches + {} writebacks",
            r.offchip_fetches, r.offchip_writebacks
        ),
    ]);
    for cl in AccessClass::ALL {
        t.row_owned(vec![
            format!("  {}", cl.label()),
            format!("{} ({})", r.classes.get(cl), pct(r.classes.fraction(cl))),
        ]);
    }
    t.row_owned(vec![
        "footprint".into(),
        heteropipe::render::bytes_human(r.total_footprint),
    ]);
    t.row_owned(vec!["page faults".into(), r.faults.to_string()]);
    t.row_owned(vec!["C_serial".into(), r.c_serial.to_string()]);
    t.row_owned(vec![
        "bandwidth-limited".into(),
        if r.bw_limited { "yes" } else { "no" }.into(),
    ]);
    print!("{}", t.render());

    if let Some(path) = args.trace {
        let json = to_chrome_json(&r.benchmark, &spans);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write trace {path}: {e}");
            std::process::exit(1);
        }
        println!("\ntrace written to {path} ({} tasks)", spans.len());
    }
}
