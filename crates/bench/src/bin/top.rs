//! `top`: a live text dashboard over a running coordinator.
//!
//! Polls `GET /metrics` (the JSON view, for breaker states and the peer
//! cache tier), `GET /metrics?format=prometheus` (the federated
//! exposition, for per-worker counters and latency histograms) and
//! `GET /v1/debug/profile` (the always-on phase profiler) once per
//! interval, and renders per-worker request rates, latency percentiles,
//! cache and peer-hit ratios, breaker states, and the hottest profiled
//! phases. Also works against a plain single-node server: the unlabeled
//! series become one `(local)` row and the cluster table is omitted.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin top -- \
//!     --addr 127.0.0.1:8080 [--interval-ms 1000] [--count 0]
//! ```
//!
//! `--count 0` (the default) renders frames until interrupted; a
//! positive count exits after that many frames, which is what the tests
//! and scripted probes use.

use std::collections::BTreeMap;
use std::io::IsTerminal as _;
use std::time::{Duration, Instant};

use heteropipe_obs::expfmt::{self, Sample};
use heteropipe_serve::{Client, Json};

struct TopArgs {
    addr: String,
    interval_ms: u64,
    count: u64,
}

fn parse_args() -> TopArgs {
    let mut out = TopArgs {
        addr: String::new(),
        interval_ms: 1000,
        count: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--addr" => {
                out.addr = it
                    .next()
                    .filter(|s| !s.is_empty())
                    .unwrap_or_else(|| panic!("--addr requires host:port"));
            }
            "--interval-ms" => {
                out.interval_ms = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .unwrap_or_else(|| panic!("--interval-ms requires a positive integer"));
            }
            "--count" => {
                out.count = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--count requires an integer (0 = forever)"));
            }
            other => panic!(
                "unknown argument {other}; accepted: --addr <host:port>, \
                 --interval-ms <N>, --count <N>"
            ),
        }
    }
    if out.addr.is_empty() {
        panic!("--addr <host:port> is required (point it at a coordinator)");
    }
    out
}

/// One worker's slice of the federated exposition, keyed by the `worker`
/// label (the empty string holds the coordinator's own unlabeled series).
#[derive(Default)]
struct WorkerView {
    requests: f64,
    cache_hits: f64,
    cache_misses: f64,
    /// Cumulative latency buckets as `(le, count)`, in exposition order.
    latency_buckets: Vec<(f64, f64)>,
}

fn worker_views(samples: &[Sample]) -> BTreeMap<String, WorkerView> {
    let mut views: BTreeMap<String, WorkerView> = BTreeMap::new();
    for s in samples {
        let key = s.label("worker").unwrap_or("").to_string();
        let v = views.entry(key).or_default();
        match s.name.as_str() {
            "heteropipe_server_requests_total" => v.requests += s.value,
            "heteropipe_engine_cache_hits_total" => v.cache_hits += s.value,
            "heteropipe_engine_cache_misses_total" => v.cache_misses += s.value,
            "heteropipe_server_request_latency_microseconds_bucket" => {
                if let Some(le) = s.label("le").and_then(|le| le.parse::<f64>().ok()) {
                    v.latency_buckets.push((le, s.value));
                }
            }
            _ => {}
        }
    }
    views
}

/// Smallest bucket boundary whose cumulative count reaches `q` of the
/// total — the same read a Prometheus `histogram_quantile` would give.
fn bucket_percentile(buckets: &[(f64, f64)], q: f64) -> f64 {
    let total = buckets.last().map_or(0.0, |b| b.1);
    if total <= 0.0 {
        return 0.0;
    }
    let target = q * total;
    for (le, c) in buckets {
        if *c >= target {
            return *le;
        }
    }
    f64::INFINITY
}

fn ratio(hits: f64, misses: f64) -> String {
    let total = hits + misses;
    if total <= 0.0 {
        "   -".into()
    } else {
        format!("{:3.0}%", hits / total * 100.0)
    }
}

fn fmt_us(us: f64) -> String {
    if us.is_infinite() {
        ">max".into()
    } else if us >= 1e6 {
        format!("{:.1}s", us / 1e6)
    } else if us >= 1e3 {
        format!("{:.1}ms", us / 1e3)
    } else {
        format!("{us:.0}us")
    }
}

fn render_frame(
    frame: u64,
    addr: &str,
    metrics: &Json,
    views: &BTreeMap<String, WorkerView>,
    rates: &BTreeMap<String, f64>,
    profile: &Json,
) {
    println!("heteropipe top — {addr} — frame {frame}");

    // Coordinator-level aggregate from the JSON view.
    if let Some(server) = metrics.get("server").filter(|s| !matches!(s, Json::Null)) {
        let g = |path: &[&str]| {
            let mut cur = server;
            for p in path {
                match cur.get(p) {
                    Some(v) => cur = v,
                    None => return 0,
                }
            }
            cur.as_u64().unwrap_or(0)
        };
        println!(
            "  frontend: {} requests ({} in flight), p50 {} p99 {}, {} rejected, {} shed",
            g(&["requests"]),
            g(&["in_flight"]),
            fmt_us(g(&["latency_us", "p50"]) as f64),
            fmt_us(g(&["latency_us", "p99"]) as f64),
            g(&["rejected_503"]),
            g(&["shed_503"]),
        );
    }

    // Durability and admission: journal counters, deadline aborts, and
    // one column per configured tenant bucket. All three are omitted
    // when the target has no journal, no deadline refusals, and no
    // tenant plan, so pre-existing frames render unchanged.
    let deadline = metrics
        .get("deadline_exceeded")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if let Some(j) = metrics.get("journal").filter(|j| !matches!(j, Json::Null)) {
        let g = |k: &str| j.get(k).and_then(Json::as_u64).unwrap_or(0);
        println!(
            "  journal: {} appended, {} replayed, {} recovered, {} async jobs; {} deadline aborts",
            g("appended"),
            g("replayed"),
            g("recovered"),
            g("async_jobs"),
            deadline,
        );
    } else if deadline > 0 {
        println!("  deadline: {deadline} aborts");
    }
    if let Some(tenants) = metrics
        .get("tenants")
        .and_then(Json::as_array)
        .filter(|t| !t.is_empty())
    {
        let cols: Vec<String> = tenants
            .iter()
            .map(|t| {
                let g = |k: &str| t.get(k).and_then(Json::as_u64).unwrap_or(0);
                format!(
                    "{} {} ok / {} throttled",
                    t.get("tenant").and_then(Json::as_str).unwrap_or("?"),
                    g("requests"),
                    g("throttled"),
                )
            })
            .collect();
        println!("  tenants: {}", cols.join("; "));
    }

    // Per-worker table: rates and latency from the federated exposition,
    // breaker and peer tier from the cluster JSON block.
    let cluster_workers = metrics
        .get("cluster")
        .and_then(|c| c.get("workers"))
        .and_then(Json::as_array);
    println!(
        "  {:<22} {:>8} {:>9} {:>9} {:>6} {:>6}  breaker",
        "worker", "req/s", "p50", "p99", "cache", "peer"
    );
    for (key, v) in views {
        let (label, breaker, peer) = match cluster_workers {
            Some(workers) => {
                let w = workers
                    .iter()
                    .find(|w| w.get("addr").and_then(Json::as_str) == Some(key.as_str()));
                let breaker = w
                    .and_then(|w| w.get("breaker"))
                    .and_then(Json::as_str)
                    .unwrap_or("-");
                let hits = w
                    .and_then(|w| w.get("peer_hits"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0) as f64;
                let misses = w
                    .and_then(|w| w.get("peer_misses"))
                    .and_then(Json::as_u64)
                    .unwrap_or(0) as f64;
                if key.is_empty() {
                    // The coordinator's own unlabeled series — covered
                    // by the aggregate line above.
                    continue;
                }
                (key.clone(), breaker, ratio(hits, misses))
            }
            None => ("(local)".to_string(), "-", "   -".to_string()),
        };
        println!(
            "  {:<22} {:>8.1} {:>9} {:>9} {:>6} {:>6}  {}",
            label,
            rates.get(key).copied().unwrap_or(0.0),
            fmt_us(bucket_percentile(&v.latency_buckets, 0.50)),
            fmt_us(bucket_percentile(&v.latency_buckets, 0.99)),
            ratio(v.cache_hits, v.cache_misses),
            peer,
            breaker,
        );
    }
    if let Some(errors) = metrics
        .get("federation")
        .and_then(|f| f.get("scrape_errors"))
        .and_then(Json::as_u64)
        .filter(|&e| e > 0)
    {
        println!("  federation: {errors} scrape errors (a worker's registry was unreachable)");
    }

    // The hottest profiled phases, already sorted by total time.
    if let Some(phases) = profile.get("phases").and_then(Json::as_array) {
        println!(
            "  {:<22} {:>10} {:>9} {:>9} {:>9}",
            "phase", "calls", "total", "p99", "max"
        );
        for p in phases.iter().take(6) {
            let g = |k: &str| p.get(k).and_then(Json::as_u64).unwrap_or(0);
            println!(
                "  {:<22} {:>10} {:>9} {:>9} {:>9}",
                p.get("name").and_then(Json::as_str).unwrap_or("?"),
                g("count"),
                fmt_us(g("total_ns") as f64 / 1e3),
                fmt_us(g("p99_ns") as f64 / 1e3),
                fmt_us(g("max_ns") as f64 / 1e3),
            );
        }
    }
}

fn main() {
    let args = parse_args();
    let mut client = Client::new(args.addr.clone()).with_timeout(Duration::from_secs(5));
    let clear = std::io::stdout().is_terminal();

    let mut prev_requests: BTreeMap<String, f64> = BTreeMap::new();
    let mut prev_at = Instant::now();
    let mut frame = 0u64;
    loop {
        frame += 1;
        let metrics = client
            .get("/metrics")
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| r.json())
            .unwrap_or_else(|| panic!("GET /metrics against {} failed", args.addr));
        let prom = client
            .get("/metrics?format=prometheus")
            .ok()
            .filter(|r| r.status == 200)
            .map(|r| String::from_utf8_lossy(&r.body).into_owned())
            .unwrap_or_else(|| panic!("GET /metrics?format=prometheus failed"));
        let samples = expfmt::parse(&prom).expect("exposition parses");
        let profile = client
            .get("/v1/debug/profile")
            .ok()
            .filter(|r| r.status == 200)
            .and_then(|r| r.json())
            .unwrap_or(Json::Null);

        let views = worker_views(&samples);
        let dt = prev_at.elapsed().as_secs_f64();
        prev_at = Instant::now();
        let mut rates = BTreeMap::new();
        for (key, v) in &views {
            // First frame has no baseline; rates start at zero.
            let prev = prev_requests.get(key).copied().unwrap_or(v.requests);
            rates.insert(key.clone(), (v.requests - prev).max(0.0) / dt.max(1e-9));
            prev_requests.insert(key.clone(), v.requests);
        }

        if clear {
            print!("\x1b[2J\x1b[H");
        }
        render_frame(frame, &args.addr, &metrics, &views, &rates, &profile);

        if args.count > 0 && frame >= args.count {
            break;
        }
        std::thread::sleep(Duration::from_millis(args.interval_ms));
    }
}
