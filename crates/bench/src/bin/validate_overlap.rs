//! Regenerates the §V-A component-overlap model validation.
//!
//! A thin wrapper submitting the built-in `validate_overlap` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("validate_overlap");
}
