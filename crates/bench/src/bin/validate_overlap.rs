//! Regenerates the §V-A component-overlap model validation.

use heteropipe::experiments::validate;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let rows = validate::validate_overlap(args.scale);
    print!("{}", validate::render_overlap(&rows));
}
