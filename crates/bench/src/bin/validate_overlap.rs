//! Regenerates the §V-A component-overlap model validation.

use heteropipe::experiments::validate;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    let rows = validate::validate_overlap_with(&engine, args.scale);
    print!("{}", validate::render_overlap(&rows));
    heteropipe_bench::finish(&engine);
}
