//! Regenerates Fig. 5 — memory accesses by component.
//!
//! A thin wrapper submitting the built-in `fig5` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("fig5");
}
