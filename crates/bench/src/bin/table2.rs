//! Regenerates Table II — producer-consumer constructs census.
//!
//! A thin wrapper submitting the built-in `table2` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("table2");
}
