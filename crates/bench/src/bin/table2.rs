//! Regenerates Table II — producer-consumer constructs census.

fn main() {
    let _ = heteropipe_bench::HarnessArgs::parse();
    print!("{}", heteropipe::experiments::tables::render_table2());
}
