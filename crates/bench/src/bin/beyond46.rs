//! Characterizes the 12 benchmarks outside the paper's examined set.

use heteropipe::experiments::beyond;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    print!("{}", beyond::render(&beyond::beyond46(args.scale)));
}
