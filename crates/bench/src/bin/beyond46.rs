//! Characterizes the 12 benchmarks outside the paper's examined set.

use heteropipe::experiments::beyond;

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let engine = args.engine();
    print!(
        "{}",
        beyond::render(&beyond::beyond46_with(&engine, args.scale))
    );
    heteropipe_bench::finish(&engine);
}
