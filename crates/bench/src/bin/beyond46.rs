//! Characterizes the 12 benchmarks outside the paper's examined set.
//!
//! A thin wrapper submitting the built-in `beyond46` task graph (see
//! `heteropipe_flow::figures`).

fn main() {
    heteropipe_bench::run_figure("beyond46");
}
