//! `smoke`: the CI server smoke test.
//!
//! Starts the service on an ephemeral port, checks `/healthz`, executes
//! one benchmark through `POST /v1/run` (twice — the repeat must be a
//! byte-identical cache hit), and shuts down gracefully. On top of the
//! functional path it gates the observability surface: the correlation
//! id returned in `X-Request-Id` must appear in the captured JSON log
//! lines and in the retrievable Chrome trace, and `GET /metrics` in
//! Prometheus text format must pass the in-tree exposition parser.
//! Exits non-zero on any failure, so `ci.sh` can gate on it. Runs at
//! test scale so the whole check takes seconds.

use std::sync::Arc;

use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};

fn main() {
    // Capture log output in memory so the smoke run can assert on it.
    // The level is clamped up to `info`: the request-log assertion below
    // needs the serve layer's per-request records even if HETEROPIPE_LOG
    // asks for something quieter.
    let logs = obs_log::capture();
    if obs_log::init_from_env_or(Level::Info) < Level::Info {
        obs_log::set_level(Level::Info);
    }

    let args = heteropipe_bench::HarnessArgs::parse();
    let cfg = ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        threads: args.threads.unwrap_or(2),
        max_inflight: args.max_inflight.unwrap_or(16),
        ..ServerConfig::default()
    };
    let engine = Arc::new(heteropipe_engine::Engine::new().memory_cache_only());
    let handle = api::serve(cfg, Arc::clone(&engine))
        .unwrap_or_else(|e| panic!("could not bind server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "healthz status");
    assert_eq!(
        health.json().and_then(|v| v.get("status").cloned()),
        Some(Json::str("ok")),
        "healthz body"
    );

    let body = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let cold = client.post_json("/v1/run", &body).expect("POST /v1/run");
    assert_eq!(cold.status, 200, "run status");
    let request_id = cold
        .header("x-request-id")
        .expect("X-Request-Id on the run response")
        .to_string();
    assert!(request_id.starts_with("req-"), "generated id: {request_id}");
    let run_key = cold
        .header("x-run-key")
        .expect("X-Run-Key on the run response")
        .to_string();
    let report = cold.json().expect("run response parses as JSON");
    assert_eq!(
        report.get("benchmark").and_then(Json::as_str),
        Some("rodinia/kmeans"),
        "report names its benchmark"
    );
    assert!(
        report.get("roi_ps").and_then(Json::as_u64).unwrap_or(0) > 0,
        "report has a positive ROI"
    );

    let warm = client
        .post_json("/v1/run", &body)
        .expect("warm POST /v1/run");
    assert_eq!(warm.body, cold.body, "warm repeat must be byte-identical");
    assert!(
        engine.metrics().hits() >= 1,
        "warm repeat must be a cache hit"
    );
    let warm_id = warm
        .header("x-request-id")
        .expect("X-Request-Id on the warm response")
        .to_string();

    // The latest request id round-trips into the retrievable Chrome
    // trace, which keeps the simulated timeline from the cold execution.
    let trace = client
        .get(&format!("/v1/run/{run_key}/trace"))
        .expect("GET run trace");
    assert_eq!(trace.status, 200, "trace status");
    let trace_text = String::from_utf8(trace.body).expect("trace is UTF-8");
    assert!(
        Json::parse(&trace_text).is_some(),
        "trace must be valid JSON"
    );
    assert!(
        trace_text.contains("\"ph\":\"X\""),
        "trace carries complete events"
    );
    assert!(
        trace_text.contains(&format!("\"request_id\":\"{warm_id}\"")),
        "X-Request-Id {warm_id} round-trips into the trace"
    );

    // The Prometheus exposition must parse under the in-tree validator
    // and reflect the one executed job.
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    assert_eq!(prom.status, 200, "prometheus metrics status");
    assert_eq!(
        prom.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "prometheus content type"
    );
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let executed = samples
        .iter()
        .find(|s| s.name == "heteropipe_engine_jobs_executed_total")
        .expect("jobs_executed_total exposed");
    assert_eq!(executed.value, 1.0, "one cold job executed");

    handle.shutdown_and_join();

    // All workers have joined: the captured log must show the cold run's
    // correlation id on both the serve request record and the engine's
    // job record.
    let lines = logs.lock().expect("log buffer").clone();
    let stamped: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(&format!("\"request_id\":\"{request_id}\"")))
        .collect();
    assert!(
        stamped
            .iter()
            .any(|l| l.contains("\"target\":\"serve\"") && l.contains("\"msg\":\"request\"")),
        "request id {request_id} missing from serve logs"
    );
    assert!(
        stamped.iter().any(|l| l.contains("\"target\":\"engine\"")),
        "request id {request_id} missing from engine logs"
    );

    eprintln!(
        "smoke: ok ({} log lines captured, request id {request_id})",
        lines.len()
    );
}
