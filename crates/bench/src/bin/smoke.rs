//! `smoke`: the CI server smoke test.
//!
//! Starts the service on an ephemeral port, checks `/healthz`, executes
//! one benchmark through `POST /v1/run` (twice — the repeat must be a
//! byte-identical cache hit), and shuts down gracefully. Exits non-zero
//! on any failure, so `ci.sh` can gate on it. Runs at test scale so the
//! whole check takes seconds.

use std::sync::Arc;

use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};

fn main() {
    let args = heteropipe_bench::HarnessArgs::parse();
    let cfg = ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        threads: args.threads.unwrap_or(2),
        max_inflight: args.max_inflight.unwrap_or(16),
        ..ServerConfig::default()
    };
    let engine = Arc::new(heteropipe_engine::Engine::new().memory_cache_only());
    let handle = api::serve(cfg, Arc::clone(&engine))
        .unwrap_or_else(|e| panic!("could not bind server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "healthz status");
    assert_eq!(
        health.json().and_then(|v| v.get("status").cloned()),
        Some(Json::str("ok")),
        "healthz body"
    );

    let body = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let cold = client.post_json("/v1/run", &body).expect("POST /v1/run");
    assert_eq!(cold.status, 200, "run status");
    let report = cold.json().expect("run response parses as JSON");
    assert_eq!(
        report.get("benchmark").and_then(Json::as_str),
        Some("rodinia/kmeans"),
        "report names its benchmark"
    );
    assert!(
        report.get("roi_ps").and_then(Json::as_u64).unwrap_or(0) > 0,
        "report has a positive ROI"
    );

    let warm = client
        .post_json("/v1/run", &body)
        .expect("warm POST /v1/run");
    assert_eq!(warm.body, cold.body, "warm repeat must be byte-identical");
    assert!(
        engine.metrics().hits() >= 1,
        "warm repeat must be a cache hit"
    );

    handle.shutdown_and_join();
    eprintln!("smoke: ok ({} requests served)", 3);
}
