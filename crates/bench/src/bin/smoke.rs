//! `smoke`: the CI server smoke test.
//!
//! Starts the service on an ephemeral port, checks `/healthz`, executes
//! one benchmark through `POST /v1/runs` (twice — the repeat must be a
//! byte-identical cache hit), exercises the deprecated `/v1/run` alias
//! (same bytes plus a `Deprecation` header), and shuts down gracefully.
//! On top of the functional path it gates the observability surface: the
//! correlation id returned in `X-Request-Id` must appear in the captured
//! JSON log lines and in the retrievable Chrome trace, `GET /metrics` in
//! Prometheus text format must pass the in-tree exposition parser, and
//! every non-2xx must carry the JSON error envelope. A second server
//! with an injected fault then runs a mixed sweep (duplicates plus one
//! quarantined key) through `POST /v1/sweeps` and asserts the dedup
//! counters. Exits non-zero on any failure, so `ci.sh` can gate on it.
//! Runs at test scale so the whole check takes seconds.

use std::sync::Arc;

use heteropipe_faults::{FaultPlan, Injector, RetryPolicy};
use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};

fn main() {
    // Capture log output in memory so the smoke run can assert on it.
    // The level is clamped up to `info`: the request-log assertion below
    // needs the serve layer's per-request records even if HETEROPIPE_LOG
    // asks for something quieter.
    let logs = obs_log::capture();
    if obs_log::init_from_env_or(Level::Info) < Level::Info {
        obs_log::set_level(Level::Info);
    }

    let args = heteropipe_bench::HarnessArgs::parse();
    let cfg = ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        threads: args.threads.unwrap_or(2),
        max_inflight: args.max_inflight.unwrap_or(16),
        ..ServerConfig::default()
    };
    let engine = Arc::new(heteropipe_engine::Engine::new().memory_cache_only());
    let handle = api::serve(cfg, Arc::clone(&engine))
        .unwrap_or_else(|e| panic!("could not bind server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "healthz status");
    assert_eq!(
        health.json().and_then(|v| v.get("status").cloned()),
        Some(Json::str("ok")),
        "healthz body"
    );

    let body = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let cold = client.post_json("/v1/runs", &body).expect("POST /v1/runs");
    assert_eq!(cold.status, 200, "run status");
    let request_id = cold
        .header("x-request-id")
        .expect("X-Request-Id on the run response")
        .to_string();
    assert!(request_id.starts_with("req-"), "generated id: {request_id}");
    let run_key = cold
        .header("x-run-key")
        .expect("X-Run-Key on the run response")
        .to_string();
    let report = cold.json().expect("run response parses as JSON");
    assert_eq!(
        report.get("benchmark").and_then(Json::as_str),
        Some("rodinia/kmeans"),
        "report names its benchmark"
    );
    assert!(
        report.get("roi_ps").and_then(Json::as_u64).unwrap_or(0) > 0,
        "report has a positive ROI"
    );

    let warm = client
        .post_json("/v1/runs", &body)
        .expect("warm POST /v1/runs");
    assert_eq!(warm.body, cold.body, "warm repeat must be byte-identical");
    assert!(
        engine.metrics().hits() >= 1,
        "warm repeat must be a cache hit"
    );
    // The deprecated alias answers byte-identically to the canonical
    // route, flagged with a Deprecation header pointing at its successor.
    let alias = client
        .post_json("/v1/run", &body)
        .expect("POST /v1/run (deprecated alias)");
    assert_eq!(alias.status, 200, "alias status");
    assert_eq!(alias.body, cold.body, "alias must answer byte-identically");
    assert_eq!(
        alias.header("deprecation"),
        Some("true"),
        "alias carries a Deprecation header"
    );
    assert_eq!(
        alias.header("link"),
        Some("</v1/runs>; rel=\"successor-version\""),
        "alias links to the canonical route"
    );
    let alias_id = alias
        .header("x-request-id")
        .expect("X-Request-Id on the alias response")
        .to_string();

    // The cached report is addressable as a resource.
    let lookup = client
        .get(&format!("/v1/runs/{run_key}"))
        .expect("GET /v1/runs/{key}");
    assert_eq!(lookup.status, 200, "cached-report lookup status");
    assert_eq!(lookup.body, cold.body, "resource lookup returns the report");

    // Errors arrive as the JSON envelope with a matching correlation id.
    let missing = client.get("/nope").expect("GET /nope");
    assert_eq!(missing.status, 404, "unknown route status");
    let envelope = missing.api_error().expect("404 body is the envelope");
    assert_eq!(envelope.code, "not_found", "envelope code");
    assert_eq!(
        Some(envelope.request_id.as_str()),
        missing.header("x-request-id"),
        "envelope and header agree on the request id"
    );

    // The latest request id round-trips into the retrievable Chrome
    // trace, which keeps the simulated timeline from the cold execution.
    let trace = client
        .get(&format!("/v1/runs/{run_key}/trace"))
        .expect("GET run trace");
    assert_eq!(trace.status, 200, "trace status");
    let trace_text = String::from_utf8(trace.body).expect("trace is UTF-8");
    assert!(
        Json::parse(&trace_text).is_some(),
        "trace must be valid JSON"
    );
    assert!(
        trace_text.contains("\"ph\":\"X\""),
        "trace carries complete events"
    );
    assert!(
        trace_text.contains(&format!("\"request_id\":\"{alias_id}\"")),
        "X-Request-Id {alias_id} round-trips into the trace"
    );

    // The Prometheus exposition must parse under the in-tree validator
    // and reflect the one executed job.
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    assert_eq!(prom.status, 200, "prometheus metrics status");
    assert_eq!(
        prom.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "prometheus content type"
    );
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let executed = samples
        .iter()
        .find(|s| s.name == "heteropipe_engine_jobs_executed_total")
        .expect("jobs_executed_total exposed");
    assert_eq!(executed.value, 1.0, "one cold job executed");

    handle.shutdown_and_join();

    // All workers have joined: the captured log must show the cold run's
    // correlation id on both the serve request record and the engine's
    // job record.
    let lines = logs.lock().expect("log buffer").clone();
    let stamped: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(&format!("\"request_id\":\"{request_id}\"")))
        .collect();
    assert!(
        stamped
            .iter()
            .any(|l| l.contains("\"target\":\"serve\"") && l.contains("\"msg\":\"request\"")),
        "request id {request_id} missing from serve logs"
    );
    assert!(
        stamped.iter().any(|l| l.contains("\"target\":\"engine\"")),
        "request id {request_id} missing from engine logs"
    );

    sweep_smoke();

    eprintln!(
        "smoke: ok ({} log lines captured, request id {request_id})",
        lines.len()
    );
}

/// Runs a mixed sweep — duplicates plus one quarantined key — through
/// `POST /v1/sweeps` on a second server whose engine panics once, and
/// asserts the NDJSON stream shape and the dedup counters in `/metrics`.
fn sweep_smoke() {
    // One panic budget, no retries, one worker: the first kmeans
    // execution fails deterministically and quarantines its run key.
    let engine = heteropipe_engine::Engine::new()
        .memory_cache_only()
        .with_faults(Arc::new(Injector::new(
            FaultPlan::parse("job.exec:err=panic:max=1").unwrap(),
        )))
        .with_retry(RetryPolicy::NONE)
        .with_jobs(1);
    let handle = api::serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_inflight: 16,
            ..ServerConfig::default()
        },
        Arc::new(engine),
    )
    .unwrap_or_else(|e| panic!("could not bind sweep server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    // Quarantine rodinia/kmeans: the poisoned execution answers with the
    // 500 envelope, and later requests for the key are refused.
    let poison = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let dead = client.post_json("/v1/runs", &poison).expect("poison run");
    assert_eq!(dead.status, 500, "poisoned run status");
    assert_eq!(
        dead.api_error().expect("500 body is the envelope").code,
        "internal",
        "poisoned run envelope code"
    );

    // Mixed sweep: 5 jobs, 2 unique, the kmeans pair quarantined.
    let jobs: Vec<Json> = [
        "rodinia/kmeans",
        "rodinia/srad",
        "rodinia/srad",
        "rodinia/kmeans",
        "rodinia/srad",
    ]
    .iter()
    .map(|b| {
        Json::Obj(vec![
            ("benchmark".into(), Json::str(*b)),
            ("scale".into(), Json::F64(0.08)),
        ])
    })
    .collect();
    let body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]);
    let sweep = client
        .post_json("/v1/sweeps", &body)
        .expect("POST /v1/sweeps");
    assert_eq!(sweep.status, 200, "sweep status");
    assert_eq!(
        sweep.header("content-type"),
        Some("application/x-ndjson"),
        "sweep content type"
    );
    assert!(
        sweep.header("x-sweep-key").is_some_and(|k| k.len() == 32),
        "sweep key header"
    );
    let records = sweep.ndjson().expect("sweep NDJSON parses");
    assert_eq!(records.len(), 6, "5 records + summary");
    for rec in &records[..5] {
        let bench_is_kmeans = matches!(rec.get("index").and_then(Json::as_u64), Some(0) | Some(3));
        let status = rec.get("status").and_then(Json::as_str);
        if bench_is_kmeans {
            assert_eq!(status, Some("error"), "quarantined entries fail: {rec:?}");
            assert_eq!(
                rec.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("quarantined"),
                "quarantined entries carry their code"
            );
        } else {
            assert_eq!(status, Some("ok"), "healthy entries survive: {rec:?}");
        }
    }
    let summary = records[5].get("sweep").expect("summary line");
    assert_eq!(summary.get("jobs_total").and_then(Json::as_u64), Some(5));
    assert_eq!(summary.get("jobs_unique").and_then(Json::as_u64), Some(2));
    assert_eq!(summary.get("duplicates").and_then(Json::as_u64), Some(3));
    assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(2));

    // Dedup accounting lands in both metrics formats.
    let metrics = client
        .get("/metrics")
        .expect("GET /metrics")
        .json()
        .unwrap();
    let sweeps = metrics
        .get("engine")
        .and_then(|e| e.get("sweeps"))
        .expect("engine.sweeps in metrics");
    assert_eq!(sweeps.get("count").and_then(Json::as_u64), Some(1));
    assert_eq!(sweeps.get("jobs").and_then(Json::as_u64), Some(5));
    assert_eq!(sweeps.get("deduped").and_then(Json::as_u64), Some(3));
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_engine_sweeps_total"), 1.0);
    assert_eq!(value("heteropipe_engine_sweep_jobs_total"), 5.0);
    assert_eq!(value("heteropipe_engine_sweep_deduped_total"), 3.0);

    handle.shutdown_and_join();
    eprintln!("smoke: sweep ok (5 jobs, 3 deduped, quarantined key isolated)");
}
