//! `smoke`: the CI server smoke test.
//!
//! Starts the service on an ephemeral port, checks `/healthz`, executes
//! one benchmark through `POST /v1/runs` (twice — the repeat must be a
//! byte-identical cache hit), exercises the deprecated `/v1/run` alias
//! (same bytes plus a `Deprecation` header), and shuts down gracefully.
//! On top of the functional path it gates the observability surface: the
//! correlation id returned in `X-Request-Id` must appear in the captured
//! JSON log lines and in the retrievable Chrome trace, `GET /metrics` in
//! Prometheus text format must pass the in-tree exposition parser, and
//! every non-2xx must carry the JSON error envelope. A second server
//! with an injected fault then runs a mixed sweep (duplicates plus one
//! quarantined key) through `POST /v1/sweeps` and asserts the dedup
//! counters. A third server runs a figure workflow twice through
//! `POST /v1/workflows` — validating the stage-event stream cold, full
//! memoization warm (zero stage executions, engine job counter
//! unchanged), the journaled `GET /v1/workflows/{key}` lookup, an inline
//! dependency graph's ordering, and the workflow counters in both
//! `/metrics` formats. Exits non-zero on any failure, so `ci.sh` can
//! gate on it. Runs at test scale so the whole check takes seconds.

use std::sync::Arc;

use heteropipe_faults::{FaultPlan, Injector, RetryPolicy};
use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::json::Json;
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client};

fn main() {
    // Capture log output in memory so the smoke run can assert on it.
    // The level is clamped up to `info`: the request-log assertion below
    // needs the serve layer's per-request records even if HETEROPIPE_LOG
    // asks for something quieter.
    let logs = obs_log::capture();
    if obs_log::init_from_env_or(Level::Info) < Level::Info {
        obs_log::set_level(Level::Info);
    }

    let args = heteropipe_bench::HarnessArgs::parse();
    let cfg = ServerConfig {
        addr: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".into()),
        threads: args.threads.unwrap_or(2),
        max_inflight: args.max_inflight.unwrap_or(16),
        ..ServerConfig::default()
    };
    let engine = Arc::new(heteropipe_engine::Engine::new().memory_cache_only());
    let handle = api::serve(cfg, Arc::clone(&engine))
        .unwrap_or_else(|e| panic!("could not bind server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    let health = client.get("/healthz").expect("GET /healthz");
    assert_eq!(health.status, 200, "healthz status");
    assert_eq!(
        health.json().and_then(|v| v.get("status").cloned()),
        Some(Json::str("ok")),
        "healthz body"
    );

    let body = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let cold = client.post_json("/v1/runs", &body).expect("POST /v1/runs");
    assert_eq!(cold.status, 200, "run status");
    let request_id = cold
        .header("x-request-id")
        .expect("X-Request-Id on the run response")
        .to_string();
    assert!(request_id.starts_with("req-"), "generated id: {request_id}");
    let run_key = cold
        .header("x-run-key")
        .expect("X-Run-Key on the run response")
        .to_string();
    let report = cold.json().expect("run response parses as JSON");
    assert_eq!(
        report.get("benchmark").and_then(Json::as_str),
        Some("rodinia/kmeans"),
        "report names its benchmark"
    );
    assert!(
        report.get("roi_ps").and_then(Json::as_u64).unwrap_or(0) > 0,
        "report has a positive ROI"
    );

    let warm = client
        .post_json("/v1/runs", &body)
        .expect("warm POST /v1/runs");
    assert_eq!(warm.body, cold.body, "warm repeat must be byte-identical");
    assert!(
        engine.metrics().hits() >= 1,
        "warm repeat must be a cache hit"
    );
    // The deprecated alias answers byte-identically to the canonical
    // route, flagged with a Deprecation header pointing at its successor.
    let alias = client
        .post_json("/v1/run", &body)
        .expect("POST /v1/run (deprecated alias)");
    assert_eq!(alias.status, 200, "alias status");
    assert_eq!(alias.body, cold.body, "alias must answer byte-identically");
    assert_eq!(
        alias.header("deprecation"),
        Some("true"),
        "alias carries a Deprecation header"
    );
    assert_eq!(
        alias.header("link"),
        Some("</v1/runs>; rel=\"successor-version\""),
        "alias links to the canonical route"
    );
    let alias_id = alias
        .header("x-request-id")
        .expect("X-Request-Id on the alias response")
        .to_string();

    // The cached report is addressable as a resource.
    let lookup = client
        .get(&format!("/v1/runs/{run_key}"))
        .expect("GET /v1/runs/{key}");
    assert_eq!(lookup.status, 200, "cached-report lookup status");
    assert_eq!(lookup.body, cold.body, "resource lookup returns the report");

    // Errors arrive as the JSON envelope with a matching correlation id.
    let missing = client.get("/nope").expect("GET /nope");
    assert_eq!(missing.status, 404, "unknown route status");
    let envelope = missing.api_error().expect("404 body is the envelope");
    assert_eq!(envelope.code, "not_found", "envelope code");
    assert_eq!(
        Some(envelope.request_id.as_str()),
        missing.header("x-request-id"),
        "envelope and header agree on the request id"
    );

    // The latest request id round-trips into the retrievable Chrome
    // trace, which keeps the simulated timeline from the cold execution.
    let trace = client
        .get(&format!("/v1/runs/{run_key}/trace"))
        .expect("GET run trace");
    assert_eq!(trace.status, 200, "trace status");
    let trace_text = String::from_utf8(trace.body).expect("trace is UTF-8");
    assert!(
        Json::parse(&trace_text).is_some(),
        "trace must be valid JSON"
    );
    assert!(
        trace_text.contains("\"ph\":\"X\""),
        "trace carries complete events"
    );
    assert!(
        trace_text.contains(&format!("\"request_id\":\"{alias_id}\"")),
        "X-Request-Id {alias_id} round-trips into the trace"
    );

    // The Prometheus exposition must parse under the in-tree validator
    // and reflect the one executed job.
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    assert_eq!(prom.status, 200, "prometheus metrics status");
    assert_eq!(
        prom.header("content-type"),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "prometheus content type"
    );
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let executed = samples
        .iter()
        .find(|s| s.name == "heteropipe_engine_jobs_executed_total")
        .expect("jobs_executed_total exposed");
    assert_eq!(executed.value, 1.0, "one cold job executed");

    handle.shutdown_and_join();

    // All workers have joined: the captured log must show the cold run's
    // correlation id on both the serve request record and the engine's
    // job record.
    let lines = logs.lock().expect("log buffer").clone();
    let stamped: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains(&format!("\"request_id\":\"{request_id}\"")))
        .collect();
    assert!(
        stamped
            .iter()
            .any(|l| l.contains("\"target\":\"serve\"") && l.contains("\"msg\":\"request\"")),
        "request id {request_id} missing from serve logs"
    );
    assert!(
        stamped.iter().any(|l| l.contains("\"target\":\"engine\"")),
        "request id {request_id} missing from engine logs"
    );

    sweep_smoke();
    workflow_smoke();

    eprintln!(
        "smoke: ok ({} log lines captured, request id {request_id})",
        lines.len()
    );
}

/// Runs a mixed sweep — duplicates plus one quarantined key — through
/// `POST /v1/sweeps` on a second server whose engine panics once, and
/// asserts the NDJSON stream shape and the dedup counters in `/metrics`.
fn sweep_smoke() {
    // One panic budget, no retries, one worker: the first kmeans
    // execution fails deterministically and quarantines its run key.
    let engine = heteropipe_engine::Engine::new()
        .memory_cache_only()
        .with_faults(Arc::new(Injector::new(
            FaultPlan::parse("job.exec:err=panic:max=1").unwrap(),
        )))
        .with_retry(RetryPolicy::NONE)
        .with_jobs(1);
    let handle = api::serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_inflight: 16,
            ..ServerConfig::default()
        },
        Arc::new(engine),
    )
    .unwrap_or_else(|e| panic!("could not bind sweep server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    // Quarantine rodinia/kmeans: the poisoned execution answers with the
    // 500 envelope, and later requests for the key are refused.
    let poison = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/kmeans")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let dead = client.post_json("/v1/runs", &poison).expect("poison run");
    assert_eq!(dead.status, 500, "poisoned run status");
    assert_eq!(
        dead.api_error().expect("500 body is the envelope").code,
        "internal",
        "poisoned run envelope code"
    );

    // Mixed sweep: 5 jobs, 2 unique, the kmeans pair quarantined.
    let jobs: Vec<Json> = [
        "rodinia/kmeans",
        "rodinia/srad",
        "rodinia/srad",
        "rodinia/kmeans",
        "rodinia/srad",
    ]
    .iter()
    .map(|b| {
        Json::Obj(vec![
            ("benchmark".into(), Json::str(*b)),
            ("scale".into(), Json::F64(0.08)),
        ])
    })
    .collect();
    let body = Json::Obj(vec![("jobs".into(), Json::Arr(jobs))]);
    let sweep = client
        .post_json("/v1/sweeps", &body)
        .expect("POST /v1/sweeps");
    assert_eq!(sweep.status, 200, "sweep status");
    assert_eq!(
        sweep.header("content-type"),
        Some("application/x-ndjson"),
        "sweep content type"
    );
    assert!(
        sweep.header("x-sweep-key").is_some_and(|k| k.len() == 32),
        "sweep key header"
    );
    let records = sweep.ndjson().expect("sweep NDJSON parses");
    assert_eq!(records.len(), 6, "5 records + summary");
    for rec in &records[..5] {
        let bench_is_kmeans = matches!(rec.get("index").and_then(Json::as_u64), Some(0) | Some(3));
        let status = rec.get("status").and_then(Json::as_str);
        if bench_is_kmeans {
            assert_eq!(status, Some("error"), "quarantined entries fail: {rec:?}");
            assert_eq!(
                rec.get("error")
                    .and_then(|e| e.get("code"))
                    .and_then(Json::as_str),
                Some("quarantined"),
                "quarantined entries carry their code"
            );
        } else {
            assert_eq!(status, Some("ok"), "healthy entries survive: {rec:?}");
        }
    }
    let summary = records[5].get("sweep").expect("summary line");
    assert_eq!(summary.get("jobs_total").and_then(Json::as_u64), Some(5));
    assert_eq!(summary.get("jobs_unique").and_then(Json::as_u64), Some(2));
    assert_eq!(summary.get("duplicates").and_then(Json::as_u64), Some(3));
    assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(2));

    // Dedup accounting lands in both metrics formats.
    let metrics = client
        .get("/metrics")
        .expect("GET /metrics")
        .json()
        .unwrap();
    let sweeps = metrics
        .get("engine")
        .and_then(|e| e.get("sweeps"))
        .expect("engine.sweeps in metrics");
    assert_eq!(sweeps.get("count").and_then(Json::as_u64), Some(1));
    assert_eq!(sweeps.get("jobs").and_then(Json::as_u64), Some(5));
    assert_eq!(sweeps.get("deduped").and_then(Json::as_u64), Some(3));
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_engine_sweeps_total"), 1.0);
    assert_eq!(value("heteropipe_engine_sweep_jobs_total"), 5.0);
    assert_eq!(value("heteropipe_engine_sweep_deduped_total"), 3.0);

    handle.shutdown_and_join();
    eprintln!("smoke: sweep ok (5 jobs, 3 deduped, quarantined key isolated)");
}

/// Runs the `fig3` workflow twice through `POST /v1/workflows` on a third
/// server — cold then warm — then an inline two-stage dependency graph,
/// asserting the NDJSON stage-event stream, full warm memoization, the
/// journaled lookup, and the workflow counters in both metrics formats.
fn workflow_smoke() {
    let engine = Arc::new(heteropipe_engine::Engine::new().memory_cache_only());
    let handle = api::serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 2,
            max_inflight: 16,
            ..ServerConfig::default()
        },
        Arc::clone(&engine),
    )
    .unwrap_or_else(|e| panic!("could not bind workflow server: {e}"));
    let mut client = Client::new(handle.addr().to_string());

    // Cold run: the one fig3 stage executes and streams its event.
    let body = Json::Obj(vec![
        ("workflow".into(), Json::str("fig3")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let cold = client
        .post_json("/v1/workflows", &body)
        .expect("POST /v1/workflows");
    assert_eq!(cold.status, 200, "workflow status");
    assert_eq!(
        cold.header("content-type"),
        Some("application/x-ndjson"),
        "workflow content type"
    );
    let wkey = cold
        .header("x-workflow-key")
        .expect("X-Workflow-Key on the workflow response")
        .to_string();
    assert!(
        wkey.len() == 32 && wkey.bytes().all(|b| b.is_ascii_hexdigit()),
        "workflow key is 32 hex digits: {wkey}"
    );
    let lines = cold.ndjson().expect("workflow NDJSON parses");
    assert_eq!(lines.len(), 2, "1 stage event + summary");
    let ev = &lines[0];
    assert_eq!(ev.get("stage").and_then(Json::as_str), Some("fig3"));
    assert_eq!(ev.get("kind").and_then(Json::as_str), Some("analysis"));
    assert_eq!(ev.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(ev.get("cache_hit").and_then(Json::as_bool), Some(false));
    assert!(
        ev.get("key")
            .and_then(Json::as_str)
            .is_some_and(|k| k.len() == 32),
        "stage event carries its stage key"
    );
    let summary = lines[1].get("workflow").expect("summary line");
    assert_eq!(summary.get("key").and_then(Json::as_str), Some(&*wkey));
    assert_eq!(summary.get("stages_total").and_then(Json::as_u64), Some(1));
    assert_eq!(summary.get("executed").and_then(Json::as_u64), Some(1));
    assert_eq!(summary.get("cache_hits").and_then(Json::as_u64), Some(0));
    assert_eq!(summary.get("failed").and_then(Json::as_u64), Some(0));
    let jobs_cold = engine.metrics().jobs_executed;
    assert!(jobs_cold > 0, "cold workflow simulates");

    // Warm repeat: fully memoized — every stage a cache hit, zero
    // executions, and the engine's job counter untouched.
    let warm = client
        .post_json("/v1/workflows", &body)
        .expect("warm POST /v1/workflows");
    assert_eq!(
        warm.header("x-workflow-key"),
        Some(&*wkey),
        "same graph, same key"
    );
    let warm_lines = warm.ndjson().expect("warm workflow NDJSON parses");
    assert_eq!(
        warm_lines[0].get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "warm stage is a memo hit"
    );
    let warm_summary = warm_lines[1].get("workflow").expect("warm summary");
    assert_eq!(warm_summary.get("executed").and_then(Json::as_u64), Some(0));
    assert_eq!(
        warm_summary.get("cache_hits").and_then(Json::as_u64),
        Some(1)
    );
    assert_eq!(
        engine.metrics().jobs_executed,
        jobs_cold,
        "warm workflow must not simulate"
    );

    // The journaled result is addressable by the workflow key.
    let lookup = client
        .get(&format!("/v1/workflows/{wkey}"))
        .expect("GET /v1/workflows/{key}");
    assert_eq!(lookup.status, 200, "journal lookup status");
    let journaled = lookup.json().expect("journal lookup parses");
    assert_eq!(
        journaled
            .get("workflow")
            .and_then(|w| w.get("key"))
            .and_then(Json::as_str),
        Some(&*wkey)
    );
    assert_eq!(
        journaled
            .get("events")
            .and_then(Json::as_array)
            .map(<[Json]>::len),
        Some(1)
    );
    let outputs = journaled
        .get("outputs")
        .and_then(Json::as_array)
        .expect("journal carries outputs");
    assert_eq!(outputs.len(), 1, "fig3 declares one output");
    assert_eq!(outputs[0].get("stage").and_then(Json::as_str), Some("fig3"));
    assert!(
        outputs[0]
            .get("text")
            .and_then(Json::as_str)
            .is_some_and(|t| !t.is_empty()),
        "output text is the rendered figure"
    );

    // Unknown key: 404. Malformed key: 400. Wrong methods: 405.
    let missing = client
        .get(&format!("/v1/workflows/{}", "0".repeat(32)))
        .expect("GET unknown workflow");
    assert_eq!(missing.status, 404, "unknown workflow key");
    let bad = client
        .get("/v1/workflows/nope")
        .expect("GET malformed workflow key");
    assert_eq!(bad.status, 400, "malformed workflow key");
    let list = client.get("/v1/workflows").expect("GET /v1/workflows");
    assert_eq!(list.status, 405, "collection is POST-only");
    assert_eq!(list.header("allow"), Some("POST"));
    let unknown = client
        .post_json(
            "/v1/workflows",
            &Json::Obj(vec![("workflow".into(), Json::str("fig999"))]),
        )
        .expect("POST unknown workflow name");
    assert_eq!(unknown.status, 404, "unknown built-in graph");

    // An inline two-stage dependency graph streams its events in
    // dependency order; the second stage re-uses the first's sweep via
    // the engine cache.
    let job = Json::Obj(vec![
        ("benchmark".into(), Json::str("rodinia/srad")),
        ("scale".into(), Json::F64(0.08)),
    ]);
    let inline = Json::Obj(vec![(
        "stages".into(),
        Json::Arr(vec![
            Json::Obj(vec![
                ("name".into(), Json::str("first")),
                ("jobs".into(), Json::Arr(vec![job.clone()])),
            ]),
            Json::Obj(vec![
                ("name".into(), Json::str("second")),
                ("deps".into(), Json::Arr(vec![Json::str("first")])),
                ("jobs".into(), Json::Arr(vec![job])),
            ]),
        ]),
    )]);
    let chained = client
        .post_json("/v1/workflows", &inline)
        .expect("POST inline workflow");
    assert_eq!(chained.status, 200, "inline workflow status");
    let chained_lines = chained.ndjson().expect("inline NDJSON parses");
    assert_eq!(chained_lines.len(), 3, "2 stage events + summary");
    assert_eq!(
        chained_lines[0].get("stage").and_then(Json::as_str),
        Some("first"),
        "dependency streams first"
    );
    assert_eq!(
        chained_lines[1].get("stage").and_then(Json::as_str),
        Some("second")
    );
    for ev in &chained_lines[..2] {
        assert_eq!(ev.get("status").and_then(Json::as_str), Some("ok"));
        assert_eq!(ev.get("kind").and_then(Json::as_str), Some("sweep"));
    }

    // A cyclic inline graph is rejected up front with the envelope.
    let cyclic = Json::Obj(vec![(
        "stages".into(),
        Json::Arr(vec![Json::Obj(vec![
            ("name".into(), Json::str("loop")),
            ("deps".into(), Json::Arr(vec![Json::str("loop")])),
            (
                "jobs".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("benchmark".into(), Json::str("rodinia/srad")),
                    ("scale".into(), Json::F64(0.08)),
                ])]),
            ),
        ])]),
    )]);
    let rejected = client
        .post_json("/v1/workflows", &cyclic)
        .expect("POST cyclic workflow");
    assert_eq!(rejected.status, 400, "cycle is a 400");
    let envelope = rejected.api_error().expect("cycle body is the envelope");
    assert!(
        envelope.message.contains("cycle"),
        "envelope names the cycle: {}",
        envelope.message
    );

    // Workflow counters land in both metrics formats: 3 workflows (cold,
    // warm, inline), 4 stage slots, 1 memo hit, 0 failures.
    let metrics = client
        .get("/metrics")
        .expect("GET /metrics")
        .json()
        .unwrap();
    let wf = metrics.get("workflows").expect("workflows in metrics");
    assert_eq!(wf.get("count").and_then(Json::as_u64), Some(3));
    assert_eq!(wf.get("stages").and_then(Json::as_u64), Some(4));
    assert_eq!(wf.get("stage_cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(wf.get("stage_failures").and_then(Json::as_u64), Some(0));
    let prom = client
        .get("/metrics?format=prometheus")
        .expect("GET /metrics (prometheus)");
    let prom_text = String::from_utf8(prom.body).expect("exposition is UTF-8");
    let samples = heteropipe_obs::expfmt::parse(&prom_text)
        .unwrap_or_else(|e| panic!("exposition must validate: {e}"));
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("missing sample {name}"))
            .value
    };
    assert_eq!(value("heteropipe_workflows_total"), 3.0);
    assert_eq!(value("heteropipe_workflow_stages_total"), 4.0);
    assert_eq!(value("heteropipe_workflow_stage_cache_hits_total"), 1.0);
    assert_eq!(value("heteropipe_workflow_stage_failures_total"), 0.0);

    handle.shutdown_and_join();
    eprintln!("smoke: workflows ok (cold+warm fig3 memoized, inline graph ordered, key {wkey})");
}
