//! `serve`: run the simulation service.
//!
//! Binds an HTTP server over a shared, disk-cached engine and serves the
//! heteropipe API until SIGINT/SIGTERM, then drains in-flight requests and
//! prints the engine's metrics footer.
//!
//! ```text
//! cargo run --release -p heteropipe-bench --bin serve -- \
//!     --addr 127.0.0.1:7878 --threads 8 --max-inflight 64
//! ```
//!
//! With `--worker --cache-dir <path>` the same binary serves as one
//! worker of a `heteropipe-cluster` coordinator: the API is identical,
//! the role is logged for supervisors, and the disk cache points at the
//! worker's own shard directory (a coordinator treats it as the cluster's
//! third cache tier).

use std::sync::Arc;
use std::time::Duration;

use heteropipe_obs::log::{self as obs_log, Level};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, shutdown};

fn main() {
    obs_log::init_from_env_or(Level::Info);
    let args = heteropipe_bench::HarnessArgs::parse();
    let mut cfg = ServerConfig::default();
    if let Some(addr) = &args.addr {
        cfg.addr = addr.clone();
    }
    if let Some(threads) = args.threads {
        cfg.threads = threads;
    }
    if let Some(max_inflight) = args.max_inflight {
        cfg.max_inflight = max_inflight;
    }

    // Chaos runs configure fault injection through HETEROPIPE_FAULTS; the
    // one injector is shared by the server seams and the engine, so rule
    // budgets and the seeded decision stream are global to the process.
    let faults = Arc::new(
        heteropipe_faults::Injector::from_env()
            .unwrap_or_else(|e| panic!("bad {}: {e}", heteropipe_faults::ENV_VAR)),
    );
    if faults.is_enabled() {
        obs_log::warn("serve", "fault injection enabled", &[]);
    }
    cfg.faults = Arc::clone(&faults);
    let engine = Arc::new(args.engine().with_faults(Arc::clone(&faults)));
    // `--journal-dir` makes the server durable: async jobs are journaled
    // ahead of execution and interrupted ones resume on the next start.
    // Sealed segments past the `--journal-keep` retention are swept first
    // so the directory resume scans does not grow without bound.
    let handle = match &args.journal_dir {
        Some(dir) => {
            let journal = heteropipe_engine::Journal::open(dir)
                .unwrap_or_else(|e| panic!("could not open journal at {dir}: {e}"))
                .with_faults(faults);
            journal.gc(Duration::from_secs(args.journal_keep_s));
            api::serve_durable(cfg, Arc::clone(&engine), Arc::new(journal))
        }
        None => api::serve(cfg, Arc::clone(&engine)),
    }
    .unwrap_or_else(|e| {
        panic!("could not bind server: {e}");
    });
    obs_log::info(
        "serve",
        "listening",
        &[
            ("addr", handle.addr().to_string().into()),
            (
                "role",
                if args.worker { "worker" } else { "standalone" }.into(),
            ),
            ("durable", args.journal_dir.is_some().into()),
        ],
    );

    shutdown::install();
    while !shutdown::signaled() {
        std::thread::sleep(Duration::from_millis(100));
    }
    obs_log::info("serve", "shutting down, draining in-flight requests", &[]);
    handle.shutdown_and_join();
    heteropipe_bench::finish(&engine);
}
