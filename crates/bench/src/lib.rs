//! # heteropipe-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper. Each `fig*` / `table*` / `validate_*` / `ablation*` binary prints
//! the corresponding result (see DESIGN.md §4 for the index), and the
//! `bench` binary times both the experiment drivers and the simulator
//! substrates with the in-tree median-of-N harness in [`timing`].
//!
//! All binaries accept `--scale <f64>` (default 1.0, the paper-equivalent
//! scaled input), `--jobs <N>` (batch parallelism), `--no-cache` (bypass
//! the engine's result cache), and `--csv` where a CSV form exists. Every
//! experiment run goes through a [`heteropipe_engine::Engine`], which
//! caches results under `results/cache/` and prints a metrics footer on
//! stderr; set `HETEROPIPE_METRICS_CSV=<path>` to also export the counters
//! as CSV.

#![warn(missing_docs)]

pub mod timing;

use heteropipe_engine::Engine;
use heteropipe_workloads::Scale;

/// Default `--journal-keep` retention for sealed journal segments: seven
/// days, in seconds.
pub const DEFAULT_JOURNAL_KEEP_S: u64 = 7 * 24 * 60 * 60;

/// Parses the common CLI arguments of the harness binaries.
///
/// Recognized: `--scale <f64>` (input scale factor, default 1.0),
/// `--jobs <N>` (concurrent simulations, default: all hardware threads),
/// `--no-cache` (recompute everything, ignore cached results), and
/// `--csv` (machine-readable output where supported). The server-facing
/// binaries add `--addr <host:port>` (bind/target address),
/// `--threads <N>` (server workers / load-generator clients),
/// `--max-inflight <N>` (connection limit before 503 backpressure),
/// `--requests <N>` (load-generator requests per client),
/// `--worker` (run `serve` as a cluster worker behind a coordinator),
/// `--cache-dir <path>` (disk-cache location, so cluster workers
/// keep disjoint caches), `--journal-dir <path>` (write-ahead journal
/// for durable `?async=1` jobs — `serve` and `loadgen` use it),
/// `--journal-keep <seconds>` (retention for sealed journal segments;
/// older ones are GC'd at startup, default seven days),
/// `--async` (loadgen submits sweeps asynchronously and polls them), and
/// `--deadline-ms <N>` (loadgen stamps every request with an
/// `X-Deadline-Ms` budget so deadline aborts become measurable).
/// Unknown arguments are rejected with a message listing the accepted
/// ones.
#[derive(Debug, Clone, PartialEq)]
pub struct HarnessArgs {
    /// Input scale for the workload models.
    pub scale: Scale,
    /// Whether to emit CSV instead of the aligned text table.
    pub csv: bool,
    /// Batch parallelism cap; `None` uses every hardware thread.
    pub jobs: Option<usize>,
    /// Whether to bypass the result cache.
    pub no_cache: bool,
    /// Server bind address (`serve` binary) or target address (`loadgen`,
    /// `smoke`); `None` uses each binary's default.
    pub addr: Option<String>,
    /// Server worker threads / load-generator client threads.
    pub threads: Option<usize>,
    /// Server connection limit before 503 backpressure kicks in.
    pub max_inflight: Option<usize>,
    /// Requests per load-generator thread.
    pub requests: Option<usize>,
    /// Whether `serve` runs as a cluster worker behind a coordinator
    /// (today a role marker for logs and process supervisors; the HTTP
    /// surface is identical).
    pub worker: bool,
    /// Disk-cache directory override; cluster workers point this at
    /// disjoint paths so each owns its shard's cache.
    pub cache_dir: Option<String>,
    /// Write-ahead journal directory: `serve` started with one accepts
    /// `?async=1` jobs durably and resumes them after a crash.
    pub journal_dir: Option<String>,
    /// Journal retention threshold in seconds: at startup, sealed journal
    /// segments older than this are deleted before resume scans the
    /// directory (`heteropipe_journal_gc_total` counts them). Default
    /// seven days; unsealed segments are never GC'd.
    pub journal_keep_s: u64,
    /// Whether `loadgen` exercises the async sweep path (submit, poll,
    /// fetch records) instead of synchronous streaming.
    pub async_mode: bool,
    /// Deadline budget `loadgen` attaches to every timed request as
    /// `X-Deadline-Ms`; aborted requests are tallied per route.
    pub deadline_ms: Option<u64>,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// operator-facing binaries; a panic with context is the UX).
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    #[allow(clippy::should_implement_trait)] // not an iterator collector
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = HarnessArgs {
            scale: Scale::PAPER,
            csv: false,
            jobs: None,
            no_cache: false,
            addr: None,
            threads: None,
            max_inflight: None,
            requests: None,
            worker: false,
            cache_dir: None,
            journal_dir: None,
            journal_keep_s: DEFAULT_JOURNAL_KEEP_S,
            async_mode: false,
            deadline_ms: None,
        };
        let mut it = args.into_iter();
        let positive = |it: &mut dyn Iterator<Item = String>, flag: &str| {
            it.next()
                .and_then(|s| s.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| panic!("{flag} requires a positive integer"))
        };
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| panic!("--scale requires a positive number"));
                    out.scale = Scale::new(v);
                }
                "--jobs" => out.jobs = Some(positive(&mut it, "--jobs")),
                "--no-cache" => out.no_cache = true,
                "--csv" => out.csv = true,
                "--addr" => {
                    out.addr = Some(
                        it.next()
                            .filter(|s| !s.is_empty())
                            .unwrap_or_else(|| panic!("--addr requires host:port")),
                    );
                }
                "--threads" => out.threads = Some(positive(&mut it, "--threads")),
                "--max-inflight" => {
                    out.max_inflight = Some(positive(&mut it, "--max-inflight"));
                }
                "--requests" => out.requests = Some(positive(&mut it, "--requests")),
                "--worker" => out.worker = true,
                "--cache-dir" => {
                    out.cache_dir = Some(
                        it.next()
                            .filter(|s| !s.is_empty())
                            .unwrap_or_else(|| panic!("--cache-dir requires a path")),
                    );
                }
                "--journal-dir" => {
                    out.journal_dir = Some(
                        it.next()
                            .filter(|s| !s.is_empty())
                            .unwrap_or_else(|| panic!("--journal-dir requires a path")),
                    );
                }
                "--journal-keep" => {
                    out.journal_keep_s = it
                        .next()
                        .and_then(|s| s.parse::<u64>().ok())
                        .unwrap_or_else(|| panic!("--journal-keep requires seconds"));
                }
                "--async" => out.async_mode = true,
                "--deadline-ms" => {
                    out.deadline_ms = Some(positive(&mut it, "--deadline-ms") as u64);
                }
                other => panic!(
                    "unknown argument {other}; accepted: --scale <f64>, --jobs <N>, \
                     --no-cache, --csv, --addr <host:port>, --threads <N>, \
                     --max-inflight <N>, --requests <N>, --worker, \
                     --cache-dir <path>, --journal-dir <path>, \
                     --journal-keep <seconds>, --async, --deadline-ms <N>"
                ),
            }
        }
        out
    }

    /// Builds the [`Engine`] these arguments describe: default disk cache
    /// (or the `--cache-dir` override, or none under `--no-cache`),
    /// parallelism from `--jobs`.
    pub fn engine(&self) -> Engine {
        let mut e = Engine::new();
        if self.no_cache {
            e = e.without_cache();
        } else if let Some(dir) = &self.cache_dir {
            e = e.with_cache_dir(dir);
        }
        if let Some(jobs) = self.jobs {
            e = e.with_jobs(jobs);
        }
        e
    }
}

/// Runs a built-in figure workflow end to end: parses the standard CLI
/// arguments, builds the engine, submits the named
/// [`heteropipe_flow::figures`] graph through a
/// [`heteropipe_flow::FlowRunner`], prints every declared output in the
/// binary's historical print style, and (where the binary historically
/// did) ends with the metrics footer. Every `fig*` / `table*` /
/// `validate_*` / study binary is a one-line wrapper over this.
///
/// # Panics
///
/// Panics on an unknown graph name, malformed CLI arguments, or a failed
/// stage (nothing is printed to stdout in that case).
pub fn run_figure(name: &str) {
    use heteropipe_flow::{figures, FlowRunner, PrintStyle, StageStatus};

    let args = HarnessArgs::parse();
    let fg = figures::graph(name, args.scale, args.csv)
        .unwrap_or_else(|| panic!("unknown built-in workflow {name:?}"));
    let engine = std::sync::Arc::new(args.engine());
    let runner = FlowRunner::new(std::sync::Arc::clone(&engine));
    let result = runner
        .run(&fg.graph)
        .unwrap_or_else(|e| panic!("workflow {name:?} is invalid: {e}"));
    if let Some(failed) = result
        .events
        .iter()
        .find(|e| e.status == StageStatus::Failed)
    {
        panic!(
            "workflow {name:?} stage {:?} failed: {}",
            failed.stage,
            failed.error.as_deref().unwrap_or("unknown error")
        );
    }
    for (_, text) in &result.outputs {
        match fg.style {
            PrintStyle::Print => print!("{text}"),
            PrintStyle::Println => println!("{text}"),
        }
    }
    if fg.footer {
        finish(&engine);
    }
}

/// Ends a harness run: prints the engine's metrics footer to stderr and,
/// when `HETEROPIPE_METRICS_CSV` names a path, writes the counters there
/// as CSV. Stdout is untouched, so rendered tables stay byte-identical
/// whether results came from the cache or fresh simulation.
pub fn finish(engine: &Engine) {
    engine.print_summary();
    if let Ok(path) = std::env::var("HETEROPIPE_METRICS_CSV") {
        if !path.is_empty() {
            if let Err(e) = std::fs::write(&path, engine.metrics().to_csv()) {
                eprintln!("engine: could not write metrics CSV to {path}: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> HarnessArgs {
        HarnessArgs::from_iter(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let a = HarnessArgs::from_iter(Vec::new());
        assert_eq!(a.scale, Scale::PAPER);
        assert!(!a.csv);
        assert_eq!(a.jobs, None);
        assert!(!a.no_cache);
    }

    #[test]
    fn parses_scale_and_csv() {
        let a = args(&["--scale", "0.25", "--csv"]);
        assert_eq!(a.scale, Scale::new(0.25));
        assert!(a.csv);
    }

    #[test]
    fn parses_jobs() {
        let a = args(&["--jobs", "3"]);
        assert_eq!(a.jobs, Some(3));
        assert_eq!(a.engine().jobs(), 3);
    }

    #[test]
    fn parses_no_cache() {
        let a = args(&["--no-cache"]);
        assert!(a.no_cache);
        assert!(a.engine().cache().is_none());
    }

    #[test]
    fn cached_engine_by_default() {
        let a = HarnessArgs::from_iter(Vec::new());
        assert!(a.engine().cache().is_some());
    }

    #[test]
    fn parses_server_flags() {
        let a = args(&[
            "--addr",
            "127.0.0.1:9000",
            "--threads",
            "8",
            "--max-inflight",
            "128",
            "--requests",
            "500",
        ]);
        assert_eq!(a.addr.as_deref(), Some("127.0.0.1:9000"));
        assert_eq!(a.threads, Some(8));
        assert_eq!(a.max_inflight, Some(128));
        assert_eq!(a.requests, Some(500));
        assert!(!a.worker);
    }

    #[test]
    fn parses_worker_and_cache_dir() {
        let a = args(&["--worker", "--cache-dir", "/tmp/shard-0"]);
        assert!(a.worker);
        assert_eq!(a.cache_dir.as_deref(), Some("/tmp/shard-0"));
        assert!(a.engine().cache().is_some());
    }

    #[test]
    fn parses_journal_dir_and_async() {
        let a = args(&["--journal-dir", "/tmp/journal-0", "--async"]);
        assert_eq!(a.journal_dir.as_deref(), Some("/tmp/journal-0"));
        assert!(a.async_mode);
        let b = HarnessArgs::from_iter(Vec::new());
        assert_eq!(b.journal_dir, None);
        assert!(!b.async_mode);
        assert_eq!(b.deadline_ms, None);
    }

    #[test]
    fn parses_journal_keep() {
        let a = args(&["--journal-keep", "3600"]);
        assert_eq!(a.journal_keep_s, 3600);
        let b = args(&["--journal-keep", "0"]);
        assert_eq!(b.journal_keep_s, 0, "zero retention sweeps everything");
        let c = HarnessArgs::from_iter(Vec::new());
        assert_eq!(c.journal_keep_s, DEFAULT_JOURNAL_KEEP_S);
    }

    #[test]
    #[should_panic(expected = "--journal-keep requires")]
    fn rejects_bad_journal_keep() {
        HarnessArgs::from_iter(["--journal-keep".to_string(), "soon".to_string()]);
    }

    #[test]
    fn parses_deadline_ms() {
        let a = args(&["--deadline-ms", "250"]);
        assert_eq!(a.deadline_ms, Some(250));
    }

    #[test]
    #[should_panic(expected = "--deadline-ms requires")]
    fn rejects_zero_deadline() {
        HarnessArgs::from_iter(["--deadline-ms".to_string(), "0".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--journal-dir requires")]
    fn rejects_missing_journal_dir() {
        HarnessArgs::from_iter(["--journal-dir".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--cache-dir requires")]
    fn rejects_missing_cache_dir() {
        HarnessArgs::from_iter(["--cache-dir".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--addr requires")]
    fn rejects_missing_addr() {
        HarnessArgs::from_iter(["--addr".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--threads requires")]
    fn rejects_zero_threads() {
        HarnessArgs::from_iter(["--threads".to_string(), "0".to_string()]);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        HarnessArgs::from_iter(["--nope".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--scale requires")]
    fn rejects_bad_scale() {
        HarnessArgs::from_iter(["--scale".to_string(), "abc".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--jobs requires")]
    fn rejects_zero_jobs() {
        HarnessArgs::from_iter(["--jobs".to_string(), "0".to_string()]);
    }
}
