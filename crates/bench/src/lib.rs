//! # heteropipe-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! paper. Each `fig*` / `table*` / `validate_*` / `ablation*` binary prints
//! the corresponding result (see DESIGN.md §4 for the index), and the
//! Criterion benches under `benches/` time both the experiment drivers and
//! the simulator substrates.
//!
//! All binaries accept `--scale <f64>` (default 1.0, the paper-equivalent
//! scaled input) and `--csv` where a CSV form exists.

#![warn(missing_docs)]

use heteropipe_workloads::Scale;

/// Parses the common CLI arguments of the harness binaries.
///
/// Recognized: `--scale <f64>` (input scale factor, default 1.0) and
/// `--csv` (machine-readable output where supported). Unknown arguments are
/// rejected with a message listing the accepted ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HarnessArgs {
    /// Input scale for the workload models.
    pub scale: Scale,
    /// Whether to emit CSV instead of the aligned text table.
    pub csv: bool,
}

impl HarnessArgs {
    /// Parses `std::env::args`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments (these are
    /// operator-facing binaries; a panic with context is the UX).
    pub fn parse() -> Self {
        Self::from_iter(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn from_iter(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = HarnessArgs {
            scale: Scale::PAPER,
            csv: false,
        };
        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_str() {
                "--scale" => {
                    let v = it
                        .next()
                        .and_then(|s| s.parse::<f64>().ok())
                        .unwrap_or_else(|| panic!("--scale requires a positive number"));
                    out.scale = Scale::new(v);
                }
                "--csv" => out.csv = true,
                other => panic!("unknown argument {other}; accepted: --scale <f64>, --csv"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let a = HarnessArgs::from_iter(Vec::new());
        assert_eq!(a.scale, Scale::PAPER);
        assert!(!a.csv);
    }

    #[test]
    fn parses_scale_and_csv() {
        let a = HarnessArgs::from_iter(["--scale", "0.25", "--csv"].iter().map(|s| s.to_string()));
        assert_eq!(a.scale, Scale::new(0.25));
        assert!(a.csv);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn rejects_unknown() {
        HarnessArgs::from_iter(["--nope".to_string()]);
    }

    #[test]
    #[should_panic(expected = "--scale requires")]
    fn rejects_bad_scale() {
        HarnessArgs::from_iter(["--scale".to_string(), "abc".to_string()]);
    }
}
