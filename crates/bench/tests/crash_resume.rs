//! Crash-resume end-to-end: SIGKILL a durable `serve` process mid-sweep,
//! restart it over the same cache and journal directories, and prove the
//! write-ahead journal brings the job to completion with records
//! byte-identical to an uninterrupted run — re-executing only the jobs
//! the crash lost.
//!
//! The first process runs under a `job.exec` hang plan (200 ms per job,
//! `--jobs 1`), stretching an 8-job sweep to ~1.6 s so the kill lands
//! mid-run deterministically; the hang changes timing only, never record
//! bytes. `ci.sh` runs this as the crash-resume gate.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use heteropipe_engine::{Engine, Journal};
use heteropipe_serve::server::ServerConfig;
use heteropipe_serve::{api, Client, Json};

/// Every exec attempt stalls 200 ms; record bytes are unaffected.
const SLOW_PLAN: &str = "seed=5;job.exec:err=hang:ms=200:p=1:max=1000";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "heteropipe-crash-resume-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn job(benchmark: &str) -> Json {
    Json::Obj(vec![
        ("benchmark".into(), Json::str(benchmark)),
        ("system".into(), Json::str("discrete")),
        ("organization".into(), Json::str("serial")),
        ("scale".into(), Json::F64(0.05)),
    ])
}

/// Eight distinct jobs: enough runway that the kill lands with some
/// journaled and some still pending.
fn sweep_body() -> Json {
    let jobs = vec![
        job("rodinia/kmeans"),
        job("rodinia/hotspot"),
        job("rodinia/bfs"),
        job("rodinia/backprop"),
        job("rodinia/nw"),
        job("rodinia/srad"),
        job("rodinia/btree"),
        job("rodinia/myocyte"),
    ];
    Json::Obj(vec![("jobs".into(), Json::Arr(jobs))])
}

/// Per-job record lines of a sweep NDJSON body, sorted by their `index`
/// field (the sync stream is completion-ordered and ends with a timing
/// summary; `/records` is index-ordered with no summary). The record
/// lines themselves are timing-free and byte-stable.
fn record_lines(body: &[u8]) -> Vec<String> {
    let text = std::str::from_utf8(body).expect("sweep stream is UTF-8");
    let mut records: Vec<(u64, String)> = text
        .lines()
        .filter_map(|line| {
            let v = Json::parse(line)?;
            let idx = v.get("index").and_then(Json::as_u64)?;
            Some((idx, line.to_string()))
        })
        .collect();
    records.sort_by_key(|&(i, _)| i);
    records.into_iter().map(|(_, l)| l).collect()
}

/// Ground truth: the same sweep run synchronously on a fresh in-process
/// server that nothing kills.
fn baseline_records(body: &Json) -> Vec<String> {
    let dir = temp_dir("baseline-cache");
    let engine = Arc::new(Engine::new().with_jobs(1).with_cache_dir(&dir));
    let handle = api::serve(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 4,
            max_inflight: 32,
            ..ServerConfig::default()
        },
        engine,
    )
    .expect("bind baseline server");
    let resp = Client::new(handle.addr().to_string())
        .with_timeout(Duration::from_secs(120))
        .post_json("/v1/sweeps", body)
        .expect("baseline sweep");
    assert_eq!(resp.status, 200, "baseline sweep succeeds");
    let records = record_lines(&resp.body);
    handle.shutdown_and_join();
    let _ = std::fs::remove_dir_all(&dir);
    records
}

/// Spawns the real `serve` binary with stderr teed to `log`, then tails
/// the log for the "listening" line to learn the ephemeral address.
// The child is returned to the caller, which kills and waits on it.
#[allow(clippy::zombie_processes)]
fn spawn_serve(cache: &Path, journal: &Path, log: &Path, faults: Option<&str>) -> (Child, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_serve"));
    cmd.args([
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "4",
        "--jobs",
        "1",
        "--cache-dir",
        cache.to_str().unwrap(),
        "--journal-dir",
        journal.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(std::fs::File::create(log).expect("create serve log"));
    match faults {
        Some(plan) => cmd.env("HETEROPIPE_FAULTS", plan),
        None => cmd.env_remove("HETEROPIPE_FAULTS"),
    };
    let mut child = cmd.spawn().expect("spawn serve binary");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if let Ok(text) = std::fs::read_to_string(log) {
            if let Some(line) = text.lines().find(|l| l.contains("\"msg\":\"listening\"")) {
                let v = Json::parse(line).expect("listening log line parses");
                let addr = v
                    .get("addr")
                    .and_then(Json::as_str)
                    .expect("listening line carries addr");
                return (child, addr.to_string());
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            panic!("serve did not report listening within 60s");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn poll_status(client: &mut Client, key: &str) -> Json {
    let resp = client
        .get(&format!("/v1/sweeps/{key}"))
        .expect("status poll");
    assert_eq!(resp.status, 200, "status poll answers");
    Json::parse(std::str::from_utf8(&resp.body).expect("status is UTF-8"))
        .expect("status body parses")
}

#[test]
fn sigkill_mid_sweep_resumes_to_byte_identical_records() {
    let body = sweep_body();
    let total = 8u64;
    let baseline = baseline_records(&body);
    assert_eq!(baseline.len() as u64, total, "one record per job");

    let cache = temp_dir("cache");
    let journal_dir = temp_dir("journal");
    let logs = temp_dir("logs");
    std::fs::create_dir_all(&logs).expect("create log dir");

    // First life: submit asynchronously, wait for partial progress, then
    // pull the plug without ceremony.
    let (mut child, addr) = spawn_serve(
        &cache,
        &journal_dir,
        &logs.join("first.log"),
        Some(SLOW_PLAN),
    );
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let submitted = Instant::now();
    let accepted = client
        .post_json("/v1/sweeps?async=1", &body)
        .expect("async submit");
    let submit_latency = submitted.elapsed();
    assert_eq!(accepted.status, 202, "async submit is accepted");
    assert!(
        submit_latency < Duration::from_millis(500),
        "202 must not wait for execution (took {submit_latency:?} against 1.6s of work)"
    );
    let key = Json::parse(std::str::from_utf8(&accepted.body).unwrap())
        .and_then(|v| v.get("key").and_then(Json::as_str).map(str::to_string))
        .expect("202 body carries the sweep key");

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let status = poll_status(&mut client, &key);
        let done = status
            .get("records_done")
            .and_then(Json::as_u64)
            .expect("status carries records_done");
        if done >= 2 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "sweep made no progress before the kill"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    child.kill().expect("SIGKILL the serve process");
    let _ = child.wait();

    // The journal must hold the intent and a strict subset of records —
    // the crash landed mid-sweep, before the seal.
    let journaled = {
        let j = Journal::open(&journal_dir).expect("reopen journal");
        let replay = j
            .replay(&key)
            .expect("replay readable")
            .expect("segment exists");
        assert!(!replay.done, "kill landed before the seal");
        assert!(!replay.records.is_empty(), "some records were journaled");
        assert!(
            (replay.records.len() as u64) < total,
            "kill landed before completion ({} of {total} journaled)",
            replay.records.len()
        );
        replay.records.len() as u64
    };

    // Second life: same directories, no faults. The resume driver must
    // finish the job unprompted.
    let (mut child, addr) = spawn_serve(&cache, &journal_dir, &logs.join("second.log"), None);
    let mut client = Client::new(addr).with_timeout(Duration::from_secs(10));
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let status = poll_status(&mut client, &key);
        let state = status
            .get("state")
            .and_then(Json::as_str)
            .expect("status carries state");
        assert_ne!(state, "failed", "resumed sweep must not fail: {status:?}");
        if state == "done" {
            break;
        }
        assert!(Instant::now() < deadline, "resumed sweep did not finish");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Byte identity: the journaled records reconstruct exactly what the
    // uninterrupted synchronous run streamed.
    let records = client
        .get(&format!("/v1/sweeps/{key}/records"))
        .expect("records fetch");
    assert_eq!(records.status, 200, "records fetch succeeds");
    assert_eq!(
        record_lines(&records.body),
        baseline,
        "resumed records are byte-identical to the uninterrupted run"
    );

    // The metrics of the second life prove the resume was incremental:
    // the journaled prefix was replayed, only the missing tail was
    // appended (plus the seal), one recovery was counted, and the engine
    // executed fewer jobs than the sweep holds.
    let resp = client.get("/metrics").expect("metrics fetch");
    assert_eq!(resp.status, 200);
    let m = Json::parse(std::str::from_utf8(&resp.body).unwrap()).expect("metrics parse");
    let journal = m.get("journal").expect("journal metrics present");
    let g = |k: &str| {
        journal
            .get(k)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("journal metrics carry {k}"))
    };
    assert!(g("recovered") >= 1, "the resume counts as a recovery");
    assert!(
        g("replayed") >= journaled,
        "startup replay read the journaled prefix"
    );
    assert_eq!(
        g("appended"),
        total - journaled + 1,
        "only the missing tail (plus the seal) was appended"
    );
    let executed = m
        .get("engine")
        .and_then(|e| e.get("jobs_executed"))
        .and_then(Json::as_u64)
        .expect("engine metrics carry jobs_executed");
    assert!(
        executed < total,
        "resume re-executed only un-journaled jobs ({executed} of {total})"
    );

    child.kill().expect("stop resumed server");
    let _ = child.wait();
    for dir in [&cache, &journal_dir, &logs] {
        let _ = std::fs::remove_dir_all(dir);
    }
}
