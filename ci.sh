#!/usr/bin/env sh
# Tier-1 gate: everything here must pass offline with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -eux

cargo fmt --all -- --check
cargo clippy --release --all-targets -- -D warnings
cargo build --release
cargo test -q --release

# Server smoke: ephemeral port, /healthz + one POST /v1/run through the
# std-only client, warm repeat must be a byte-identical cache hit. Also
# gates the observability surface: the Prometheus /metrics exposition
# must parse, and X-Request-Id must appear in the captured logs and the
# retrievable Chrome trace.
HETEROPIPE_LOG=info cargo run --release -p heteropipe-bench --bin smoke

# Chaos gate: replays a pinned fixed-seed fault plan end-to-end (client
# retries -> server seams -> engine retries -> cache persistence) and
# asserts zero unrecovered faults, byte-identical responses vs the
# fault-free baseline, and quarantine self-heal after deliberate on-disk
# corruption. The plan seeds are compiled into the binary so every CI
# run replays the identical fault schedule.
HETEROPIPE_LOG=error cargo run --release -p heteropipe-bench --bin chaos
