#!/usr/bin/env sh
# Tier-1 gate: everything here must pass offline with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -eux

cargo fmt --all -- --check
cargo clippy --release --all-targets -- -D warnings
cargo build --release
cargo test -q --release
