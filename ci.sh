#!/usr/bin/env sh
# Tier-1 gate: everything here must pass offline with no network access.
# Run locally before pushing; .github/workflows/ci.yml runs the same steps.
set -eux

cargo fmt --all -- --check
cargo clippy --release --all-targets -- -D warnings
cargo build --release
cargo test -q --release

# Every client-visible error must be the JSON envelope (docs/api.md):
# the retired plain-text constructors must not creep back in.
! grep -rn "Response::error" crates/ --include='*.rs'
! grep -rn "Response::text(4" crates/serve/src crates/cluster/src --include='*.rs'
! grep -rn "Response::text(5" crates/serve/src crates/cluster/src --include='*.rs'

# Server smoke: ephemeral port, /healthz + one POST /v1/runs through the
# std-only client, warm repeat must be a byte-identical cache hit, the
# deprecated /v1/run alias must answer byte-identically with a
# Deprecation header, and a mixed sweep (duplicates + one quarantined
# key) must stream through POST /v1/sweeps with dedup counters visible
# in /metrics. A figure workflow submitted twice through POST
# /v1/workflows must stream stage events cold and be fully memoized warm
# (zero stage executions, engine job counter unchanged), with the
# workflow counters visible in both /metrics formats. Also gates the
# observability surface: the Prometheus /metrics exposition must parse,
# X-Request-Id must appear in the captured logs and the retrievable
# Chrome trace, and non-2xx responses must carry the JSON error envelope.
HETEROPIPE_LOG=info cargo run --release -p heteropipe-bench --bin smoke

# Chaos gate: replays a pinned fixed-seed fault plan end-to-end (client
# retries -> server seams -> engine retries -> cache persistence) and
# asserts zero unrecovered faults, byte-identical responses vs the
# fault-free baseline, and quarantine self-heal after deliberate on-disk
# corruption. The plan seeds are compiled into the binary so every CI
# run replays the identical fault schedule.
HETEROPIPE_LOG=error cargo run --release -p heteropipe-bench --bin chaos

# Crash-resume gate: SIGKILL a durable serve process (and, in the
# cluster suite, a durable coordinator) mid-sweep, restart it over the
# same journal, and require completion with records byte-identical to an
# uninterrupted run — re-executing only the jobs the crash lost. The
# chaos binary above additionally exercises the journal fault seams
# (append refusal, replay EIO, on-disk rot -> quarantine).
cargo test -q --release -p heteropipe-bench --test crash_resume
cargo test -q --release -p heteropipe-cluster --test cluster coordinator_sigkill

# Cluster smoke: one coordinator over two loopback workers. A cold sweep
# must shard across both workers and answer byte-identically to a single
# node, a warm repeat must be served entirely from peer disk caches with
# zero executions, and a worker torn down mid-sweep (dropped response,
# then a real shutdown) must rehash and self-heal without changing a
# single record byte (docs/cluster.md).
HETEROPIPE_LOG=error cargo run --release -p heteropipe-bench --bin cluster_smoke -- --scale 0.05

# Performance checkpoint: regenerates BENCH_<today>.json at a small scale
# and compares against the latest committed BENCH_*.json (read before the
# overwrite, so a same-date baseline still counts). Beyond the binary's
# generous collapse tolerance, the strict gate makes any >10% regression
# in warm engine throughput or median sim wall time a hard failure here —
# CI baselines come from the same class of machine, so that budget is
# noise, not provenance.
HETEROPIPE_LOG=error HETEROPIPE_PERF_STRICT_PCT=10 \
    cargo run --release -p heteropipe-bench --bin perf -- --scale 0.05

# Non-fatal notice when the 2-worker cluster sweep ran slower than the
# single node in the fresh checkpoint (speedup < 1.0) — expected at this
# tiny scale; the diagnosis lives in docs/observability.md §5.
awk 'match($0, /"speedup":[0-9.eE+-]+/) {
    v = substr($0, RSTART + 10, RLENGTH - 10)
    if (v + 0 < 1.0) print "ci: NOTICE cluster sweep speedup " v "x < 1.0 (docs/observability.md)"
}' "BENCH_$(date -u +%Y-%m-%d).json"
