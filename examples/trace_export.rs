//! Export a Chrome-trace timeline of one benchmark's execution on both
//! systems, for inspection in chrome://tracing or Perfetto.
//!
//! ```sh
//! cargo run --release --example trace_export
//! # then load /tmp/heteropipe_*.json in a trace viewer
//! ```

use heteropipe::trace::to_chrome_json;
use heteropipe::{run, Organization, SystemConfig};
use heteropipe_workloads::{registry, Scale};

fn main() -> std::io::Result<()> {
    let w = registry::find("rodinia/kmeans").expect("kmeans exists");
    let p = w.pipeline(Scale::new(0.25)).expect("builds");

    for (tag, cfg, org) in [
        (
            "discrete_serial",
            SystemConfig::discrete(),
            Organization::Serial,
        ),
        (
            "discrete_streams",
            SystemConfig::discrete(),
            Organization::AsyncStreams { streams: 3 },
        ),
        (
            "hetero_chunked",
            SystemConfig::heterogeneous(),
            Organization::ChunkedParallel { chunks: 8 },
        ),
    ] {
        let (report, spans) = run::run_traced(&p, &cfg, org, false);
        let json = to_chrome_json(&format!("{} ({tag})", report.benchmark), &spans);
        let path = format!("/tmp/heteropipe_{tag}.json");
        std::fs::write(&path, json)?;
        println!(
            "{tag:>18}: roi {:>10}  {} tasks  -> {path}",
            report.roi.to_string(),
            spans.len()
        );
    }
    println!("\nOpen the JSON files in chrome://tracing or https://ui.perfetto.dev");
    Ok(())
}
