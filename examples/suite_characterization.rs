//! Whole-suite characterization: the paper's Fig. 6 headline numbers per
//! suite — how much the heterogeneous processor buys each benchmark class
//! just by removing copies, before any restructuring.
//!
//! ```sh
//! cargo run --release --example suite_characterization
//! ```

use heteropipe::experiments::{characterize_all, geomean};
use heteropipe::render::{pct, TextTable};
use heteropipe_workloads::{Scale, Suite};

fn main() {
    let pairs = characterize_all(Scale::PAPER);

    let mut t = TextTable::new(&[
        "suite",
        "benchmarks",
        "geomean hetero/discrete time",
        "geomean copy share",
        "fault-affected",
    ]);
    for suite in Suite::ALL {
        let in_suite: Vec<_> = pairs.iter().filter(|p| p.meta.suite == suite).collect();
        if in_suite.is_empty() {
            continue;
        }
        let rel = geomean(
            in_suite
                .iter()
                .map(|p| p.limited.roi.as_secs_f64() / p.copy.roi.as_secs_f64()),
        );
        let copy_share = geomean(
            in_suite
                .iter()
                .map(|p| p.copy.busy.copy.fraction_of(p.copy.roi).max(1e-6)),
        );
        let faulting = in_suite.iter().filter(|p| p.limited.faults > 0).count();
        t.row_owned(vec![
            suite.to_string(),
            in_suite.len().to_string(),
            format!("{rel:.3}"),
            pct(copy_share),
            format!("{faulting}/{}", in_suite.len()),
        ]);
    }
    let overall = geomean(
        pairs
            .iter()
            .map(|p| p.limited.roi.as_secs_f64() / p.copy.roi.as_secs_f64()),
    );
    println!("{}", t.render());
    println!(
        "overall geomean limited-copy/copy run time: {overall:.3} \
         (paper §IV-C: ~0.93, i.e. a modest ~7% improvement —\n\
         the headline result that copy *removal alone* is not where the big wins are)"
    );
}
