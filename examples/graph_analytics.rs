//! Domain scenario: irregular graph analytics on a heterogeneous processor.
//!
//! The paper's intro motivates heterogeneous processors with exactly this
//! class of workload: graph algorithms whose frequent small CPU-GPU
//! hand-offs (convergence flags, frontier sizes) are strangled by PCIe
//! copies on a discrete GPU. This example runs every Lonestar and Pannotia
//! graph benchmark on both systems and shows where the win comes from —
//! copy removal, CPU cache retention, and the residual cache-contention
//! cost the paper identifies as the next optimization target.
//!
//! ```sh
//! cargo run --release --example graph_analytics
//! ```

use heteropipe::classify::AccessClass;
use heteropipe::experiments::characterize_filtered;
use heteropipe::render::{pct, TextTable};
use heteropipe_workloads::{Scale, Suite};

fn main() {
    let pairs = characterize_filtered(Scale::PAPER, |m| {
        m.suite == Suite::Lonestar || m.suite == Suite::Pannotia
    });

    let mut t = TextTable::new(&[
        "benchmark",
        "discrete roi",
        "hetero roi",
        "speedup",
        "copies were",
        "contention (hetero)",
        "bw-limited",
    ]);
    for p in &pairs {
        let speedup = p.copy.roi.as_secs_f64() / p.limited.roi.as_secs_f64();
        let copy_share = p.copy.busy.copy.fraction_of(p.copy.roi);
        let classes = &p.limited.classes;
        let contention = (classes.get(AccessClass::RrContention)
            + classes.get(AccessClass::WrContention)) as f64
            / classes.total().max(1) as f64;
        t.row_owned(vec![
            p.meta.full_name(),
            p.copy.roi.to_string(),
            p.limited.roi.to_string(),
            format!("{speedup:.2}x"),
            pct(copy_share),
            pct(contention),
            if p.limited.bw_limited { "yes" } else { "no" }.into(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Reading the table: graph codes copy little data but copy *often*;\n\
         the heterogeneous processor removes that latency and keeps CPU loop\n\
         control in cache. What remains is cache contention from kernels whose\n\
         working sets exceed the 1 MiB GPU L2 — the paper's residual target."
    );
}
