//! Bring your own workload: model an application that is *not* one of the
//! 58 benchmarks, run it on both systems, and read the paper's diagnostics
//! for it.
//!
//! The example models a small video-analytics pipeline — decode on the CPU,
//! two GPU kernels (feature extraction, then classification over the
//! features), and a CPU aggregation step per batch — and then asks the
//! study's questions about it: where does the time go, what would overlap
//! buy, do the producer-consumer hand-offs spill?
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use heteropipe::render::pct;
use heteropipe::{
    component_overlap, fuse_adjacent_kernels, run, suggest_chunks, AccessClass, Organization,
    SystemConfig,
};
use heteropipe_workloads::{Pattern, Pipeline, PipelineBuilder};

/// Builds the custom pipeline with the same IR the 58 benchmark models use.
fn video_analytics(batches: u32) -> Pipeline {
    let frame_px = 1 << 21; // ~2M pixels per batch
    let mut b = PipelineBuilder::new("custom/video_analytics");
    let raw = b.host("frames.raw", frame_px * 4);
    let features = b.gpu_temp("features", frame_px); // GPU-produced
    let labels = b.result("labels", frame_px / 16);
    for batch in 0..batches {
        // Decode each arriving batch on the CPU (fundamental, like
        // heartwall's frames: the copy is not elidable).
        b.cpu(&format!("decode_{batch}"), frame_px / 8, 16.0, 2.0)
            .reads(raw, Pattern::Stream { passes: 1 })
            .writes(raw, Pattern::Stream { passes: 1 });
        b.sticky_copy(raw, heteropipe_workloads::CopyDir::H2D, None);
        b.gpu(&format!("extract_{batch}"), frame_px / 4, 80.0, 48.0)
            .cta(256, 8 * 1024)
            .reads(raw, Pattern::Stencil { row_elems: 1024 })
            .writes(features, Pattern::Stream { passes: 1 });
        b.gpu(&format!("classify_{batch}"), frame_px / 16, 120.0, 90.0)
            .reads(features, Pattern::Stream { passes: 1 })
            .writes(labels, Pattern::Stream { passes: 1 });
        b.d2h(labels);
        b.cpu(&format!("aggregate_{batch}"), frame_px / 64, 12.0, 4.0)
            .reads(labels, Pattern::Stream { passes: 1 });
    }
    b.build()
}

fn main() {
    let p = video_analytics(3);
    println!(
        "{}: {} stages, {:.1} MiB of data\n",
        p.name,
        p.stages.len(),
        p.logical_bytes() as f64 / (1024.0 * 1024.0)
    );

    // The paper's basic comparison.
    let discrete = run::run(&p, &SystemConfig::discrete(), Organization::Serial, false);
    let hetero = run::run(
        &p,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        false,
    );
    for r in [&discrete, &hetero] {
        let (copy, cpu, gpu) = r.busy.portions(r.roi);
        println!(
            "{:>14}: roi {:>10}  copy {:>6}  cpu {:>6}  gpu {:>6}  spills {:>6}",
            r.platform.to_string(),
            r.roi.to_string(),
            pct(copy),
            pct(cpu),
            pct(gpu),
            pct(r.classes.fraction(AccessClass::WrSpill) + r.classes.fraction(AccessClass::RrSpill)),
        );
    }

    // What would the paper's optimizations buy?
    let est = component_overlap(&hetero);
    println!(
        "\nEq. 1 overlap estimate on the heterogeneous port: {} ({} of serial)",
        est,
        pct(est.fraction_of(hetero.roi))
    );

    let chunks = suggest_chunks(&p, &SystemConfig::heterogeneous());
    let chunked = run::run(
        &p,
        &SystemConfig::heterogeneous(),
        Organization::ChunkedParallel { chunks },
        false,
    );
    println!(
        "chunked producer-consumer at the suggested {} chunks: {} ({} of serial)",
        chunks,
        chunked.roi,
        pct(chunked.roi.fraction_of(hetero.roi))
    );

    let (fused, n) = fuse_adjacent_kernels(&p);
    let fused_run = run::run(
        &fused,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        false,
    );
    println!(
        "kernel fusion merged {n} producer-consumer kernel pairs: {} ({} of serial)",
        fused_run.roi,
        pct(fused_run.roi.fraction_of(hetero.roi))
    );
}
