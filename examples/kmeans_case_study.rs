//! The paper's §II kmeans case study (Fig. 3), end to end: five
//! progressively optimized organizations of the same benchmark, from the
//! bulk-synchronous discrete-GPU baseline to cache-resident chunked
//! producer-consumer execution on the heterogeneous processor.
//!
//! ```sh
//! cargo run --release --example kmeans_case_study
//! ```

use heteropipe::experiments::fig3;
use heteropipe_workloads::Scale;

fn main() {
    let rows = fig3::compute(Scale::PAPER);
    print!("{}", fig3::render(&rows));

    let baseline = &rows[0];
    let last = rows.last().expect("five rows");
    println!(
        "\nrecovered {:.0}% of baseline run time (paper: up to 77%);\n\
         GPU utilization {} -> {} (paper: 18% -> 80%)",
        (1.0 - last.rel_runtime) * 100.0,
        heteropipe::render::pct(baseline.gpu_util),
        heteropipe::render::pct(last.gpu_util),
    );
}
