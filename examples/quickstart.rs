//! Quickstart: run one benchmark on both Table I systems and print the
//! headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use heteropipe::render::pct;
use heteropipe::{run, Organization, SystemConfig};
use heteropipe_workloads::{registry, Scale};

fn main() {
    // Pick a benchmark from the registry (46 are runnable; see
    // `registry::examined()`).
    let workload = registry::find("rodinia/kmeans").expect("kmeans is in the registry");
    let pipeline = workload
        .pipeline(Scale::PAPER)
        .expect("examined workloads build");

    println!(
        "benchmark: {} ({} compute stages, {} copies, {:.1} MiB logical data)\n",
        pipeline.name,
        pipeline.compute_stages(),
        pipeline.copy_stages(),
        pipeline.logical_bytes() as f64 / (1024.0 * 1024.0),
    );

    // Its original copy version on the discrete GPU system...
    let discrete = run::run(
        &pipeline,
        &SystemConfig::discrete(),
        Organization::Serial,
        workload.meta.misalignment_sensitive,
    );
    // ...and its limited-copy version on the heterogeneous processor.
    let hetero = run::run(
        &pipeline,
        &SystemConfig::heterogeneous(),
        Organization::Serial,
        workload.meta.misalignment_sensitive,
    );

    for r in [&discrete, &hetero] {
        let (copy, cpu, gpu) = r.busy.portions(r.roi);
        println!(
            "{:>14}: roi {:>10}  copy {:>6}  cpu {:>6}  gpu {:>6}  gpu-util {:>6}  offchip {:.1} MiB",
            r.platform.to_string(),
            r.roi.to_string(),
            pct(copy),
            pct(cpu),
            pct(gpu),
            pct(r.gpu_utilization()),
            r.offchip_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!(
        "\nremoving memory copies: {:.2}x run-time improvement (paper's kmeans case study: ~2x)",
        discrete.roi.as_secs_f64() / hetero.roi.as_secs_f64()
    );
}
