//! What-if study: how system parameters move the discrete-vs-heterogeneous
//! trade-off for a copy-bound workload.
//!
//! Sweeps PCIe bandwidth (would a faster link save the discrete GPU?),
//! GPU page-fault handler latency (how cheap must faults get before the
//! heterogeneous processor's limited-copy port is free?), and chunk width
//! (how fine-grained must producer-consumer hand-off be?).
//!
//! ```sh
//! cargo run --release --example whatif_interconnect
//! ```

use heteropipe::experiments::ablations;
use heteropipe_workloads::Scale;

fn main() {
    let scale = Scale::PAPER;

    let pcie = ablations::pcie_sweep(scale);
    println!("== {} ==", pcie.metric);
    println!("{}", pcie.render());
    println!(
        "Even at 8x the Table I link bandwidth the discrete system does not\n\
         catch the heterogeneous processor on kmeans: the copies it is paying\n\
         for simply do not exist on the single chip.\n"
    );

    let faults = ablations::fault_sweep(scale);
    println!("== {} ==", faults.metric);
    println!("{}", faults.render());
    println!(
        "srad writes five GPU-temporary image planes; every 4 KiB first touch\n\
         is a CPU-serviced fault (paper: up to 7x slowdown). Handler latency\n\
         is the knob.\n"
    );

    let chunks = ablations::chunk_sweep(scale);
    println!("== {} ==", chunks.metric);
    println!("{}", chunks.render());
    println!(
        "Chunked producer-consumer saturates quickly — the paper's \"at least\n\
         four concurrent streams\" observation."
    );
}
